//! Deterministic failpoint injection for chaos testing.
//!
//! A failpoint is a named site in serving code (`worker.compute`,
//! `snapshot.write`, …) where a test — or an operator reproducing an
//! incident — can force a panic, a delay, or an injected I/O error on
//! demand. Sites are compiled in unconditionally but cost one relaxed
//! atomic load when nothing is armed, so production traffic never pays
//! for the instrumentation.
//!
//! Activation is either programmatic ([`configure`] / [`clear`] /
//! [`reset`]) or via the `REECC_FAILPOINTS` environment variable, read
//! once on first use:
//!
//! ```text
//! REECC_FAILPOINTS='worker.compute=panic*1;snapshot.load=io-error*2'
//! ```
//!
//! Grammar: `site=action[;site=action…]` where `action` is one of
//! `panic`, `delay(MS)`, `io-error`, or `off`, optionally suffixed with
//! `*N` to auto-disarm after `N` firings (`panic*1` fires exactly once).
//!
//! Naming convention (documented in DESIGN.md §8): `<component>.<operation>`,
//! lower-case, dot-separated. Current sites:
//!
//! * `worker.compute` — inside a pool worker, before a request executes.
//! * `snapshot.write` — between a snapshot's temp-file write and rename.
//! * `snapshot.load` — before a snapshot file is opened for reading.
//! * `cache.insert` — before a computed result is inserted in the cache.
//! * `session.read` — before each request line is dispatched in a
//!   session (pipe or TCP); an injected error drops the session.
//! * `transport.accept` — in the reactor before a batch of `accept(2)`
//!   calls; an injected error skips that tick's accepts.
//! * `transport.read` — in the reactor before a connection's socket is
//!   read; an injected error drops the connection.
//! * `transport.write` — in the reactor before a connection's pending
//!   output is flushed; an injected error drops the connection.
//! * `wal.append` — before a mutation record is appended to the
//!   write-ahead edge log (the ack-blocking durability point).
//! * `wal.replay` — before each record is applied during startup replay.
//! * `epoch.swap` — after a re-sketch epoch is durably written, before
//!   the `CURRENT` pointer flips to it.
//! * `resketch.build` — at the start of a background re-sketch build.
//! * `job.iterate` — at the top of every background-optimization
//!   iteration observer, before the checkpoint append.
//! * `job.checkpoint` — before each checkpoint record is appended to the
//!   job's `.reeccjob` file (the durability point of a greedy step).
//!
//! The contract at each site is [`hit`]: `Ok(())` when disarmed or after
//! an injected delay, `Err(message)` for an injected I/O error (the site
//! maps it into its native error type), and a real `panic!` for `panic`
//! actions — exactly the failure the surrounding containment layer must
//! absorb.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed failpoint does when execution reaches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Panic with a message naming the site.
    Panic,
    /// Sleep for this many milliseconds, then continue normally.
    Delay(u64),
    /// Return an injected error from [`hit`].
    IoError,
}

#[derive(Debug)]
struct Site {
    action: Option<Action>,
    /// Firings left before auto-disarm; `None` = unlimited.
    remaining: Option<u64>,
    /// Total times this site fired an action (for tests / diagnostics).
    fired: u64,
}

/// Number of currently armed sites; the fast path is `ARMED == 0`.
///
/// Starts at the `UNINITIALIZED` sentinel so the very first [`hit`] in a
/// process takes the slow path and forces [`registry`] to read
/// `REECC_FAILPOINTS` — otherwise an env-only arming would be invisible
/// to the `== 0` short-circuit. After initialization it holds the real
/// armed-site count.
static ARMED: AtomicUsize = AtomicUsize::new(UNINITIALIZED);

const UNINITIALIZED: usize = usize::MAX;

fn registry() -> &'static Mutex<HashMap<String, Site>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut map = HashMap::new();
        let mut armed = 0;
        if let Ok(spec) = std::env::var("REECC_FAILPOINTS") {
            match parse_spec(&spec) {
                Ok(entries) => {
                    for entry in entries {
                        if entry.action.is_some() {
                            armed += 1;
                        }
                        map.insert(
                            entry.site,
                            Site { action: entry.action, remaining: entry.count, fired: 0 },
                        );
                    }
                }
                Err(e) => eprintln!("REECC_FAILPOINTS ignored: {e}"),
            }
        }
        ARMED.store(armed, Ordering::SeqCst);
        Mutex::new(map)
    })
}

/// One parsed `site=action[*N]` clause of a `REECC_FAILPOINTS` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecEntry {
    /// The failpoint site name.
    pub site: String,
    /// The armed action; `None` for `off`.
    pub action: Option<Action>,
    /// The `*N` auto-disarm count; `None` = unlimited.
    pub count: Option<u64>,
}

/// Parse a `site=action[;site=action…]` spec.
///
/// # Errors
///
/// A human-readable message naming the malformed clause.
pub fn parse_spec(spec: &str) -> Result<Vec<SpecEntry>, String> {
    let mut out = Vec::new();
    for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
        let (site, action_str) = clause
            .split_once('=')
            .ok_or_else(|| format!("clause {clause:?} is not site=action"))?;
        let site = site.trim();
        if site.is_empty() {
            return Err(format!("clause {clause:?} has an empty site name"));
        }
        let action_str = action_str.trim();
        let (action_str, remaining) = match action_str.split_once('*') {
            Some((a, n)) => {
                let n: u64 =
                    n.trim().parse().map_err(|_| format!("bad repeat count in {clause:?}"))?;
                (a.trim(), Some(n))
            }
            None => (action_str, None),
        };
        let action = match action_str {
            "off" => None,
            "panic" => Some(Action::Panic),
            "io-error" => Some(Action::IoError),
            other => {
                let ms = other
                    .strip_prefix("delay(")
                    .and_then(|r| r.strip_suffix(')'))
                    .and_then(|ms| ms.trim().parse::<u64>().ok())
                    .ok_or_else(|| {
                        format!(
                            "unknown action {other:?} in {clause:?} \
                             (known: panic, delay(MS), io-error, off)"
                        )
                    })?;
                Some(Action::Delay(ms))
            }
        };
        out.push(SpecEntry { site: site.to_string(), action, count: remaining });
    }
    Ok(out)
}

/// Arm `site` with `action`, auto-disarming after `count` firings when
/// given. Replaces any previous configuration for the site.
pub fn configure(site: &str, action: Action, count: Option<u64>) {
    let mut map = registry().lock().expect("failpoint registry poisoned");
    let was_armed = map.get(site).is_some_and(|s| s.action.is_some());
    let arming = count != Some(0);
    map.insert(
        site.to_string(),
        Site { action: arming.then_some(action), remaining: count, fired: 0 },
    );
    match (was_armed, arming) {
        (false, true) => {
            ARMED.fetch_add(1, Ordering::SeqCst);
        }
        (true, false) => {
            ARMED.fetch_sub(1, Ordering::SeqCst);
        }
        _ => {}
    }
}

/// Disarm `site` (its `fired` counter is preserved).
pub fn clear(site: &str) {
    let mut map = registry().lock().expect("failpoint registry poisoned");
    if let Some(s) = map.get_mut(site) {
        if s.action.take().is_some() {
            ARMED.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Disarm every site and reset all counters.
pub fn reset() {
    let mut map = registry().lock().expect("failpoint registry poisoned");
    let armed = map.values().filter(|s| s.action.is_some()).count();
    map.clear();
    ARMED.fetch_sub(armed, Ordering::SeqCst);
}

/// How many times `site` has fired an armed action.
pub fn fired(site: &str) -> u64 {
    registry().lock().expect("failpoint registry poisoned").get(site).map_or(0, |s| s.fired)
}

/// Evaluate the failpoint at `site`.
///
/// Disarmed (the common case): returns `Ok(())` after a single relaxed
/// atomic load. Armed: `Panic` panics, `Delay` sleeps then returns
/// `Ok(())`, `IoError` returns `Err` with a message naming the site.
///
/// # Errors
///
/// `Err(message)` only for an armed `io-error` action; the call site maps
/// it into its native error type.
#[inline]
pub fn hit(site: &str) -> Result<(), String> {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return Ok(());
    }
    hit_slow(site)
}

#[cold]
fn hit_slow(site: &str) -> Result<(), String> {
    let action = {
        let mut map = registry().lock().expect("failpoint registry poisoned");
        let Some(s) = map.get_mut(site) else { return Ok(()) };
        let Some(action) = s.action else { return Ok(()) };
        s.fired += 1;
        if let Some(remaining) = &mut s.remaining {
            *remaining -= 1;
            if *remaining == 0 {
                s.action = None;
                ARMED.fetch_sub(1, Ordering::SeqCst);
            }
        }
        action
    };
    match action {
        Action::Panic => panic!("failpoint {site} triggered (injected panic)"),
        Action::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(())
        }
        Action::IoError => Err(format!("failpoint {site} injected i/o error")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test uses its own site names: the registry is process-global
    // and tests run concurrently.

    #[test]
    fn disarmed_site_is_a_noop() {
        assert_eq!(hit("fp.test.noop"), Ok(()));
        assert_eq!(fired("fp.test.noop"), 0);
    }

    #[test]
    fn io_error_counts_down_and_disarms() {
        configure("fp.test.countdown", Action::IoError, Some(2));
        assert!(hit("fp.test.countdown").is_err());
        assert!(hit("fp.test.countdown").is_err());
        assert_eq!(hit("fp.test.countdown"), Ok(()), "count exhausted; site disarmed");
        assert_eq!(fired("fp.test.countdown"), 2);
    }

    #[test]
    fn panic_action_panics_with_site_name() {
        configure("fp.test.panic", Action::Panic, Some(1));
        let err = std::panic::catch_unwind(|| {
            let _ = hit("fp.test.panic");
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("fp.test.panic"), "{msg}");
        assert_eq!(hit("fp.test.panic"), Ok(()), "one-shot panic disarms itself");
    }

    #[test]
    fn delay_action_sleeps_then_continues() {
        configure("fp.test.delay", Action::Delay(30), Some(1));
        let started = std::time::Instant::now();
        assert_eq!(hit("fp.test.delay"), Ok(()));
        assert!(started.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn clear_disarms_without_firing() {
        configure("fp.test.clear", Action::IoError, None);
        clear("fp.test.clear");
        assert_eq!(hit("fp.test.clear"), Ok(()));
    }

    #[test]
    fn spec_grammar_round_trips() {
        let entries =
            parse_spec("a.b=panic*1; c.d = delay(250) ;e.f=io-error;g.h=off").unwrap();
        let entry = |site: &str, action, count| SpecEntry { site: site.into(), action, count };
        assert_eq!(
            entries,
            vec![
                entry("a.b", Some(Action::Panic), Some(1)),
                entry("c.d", Some(Action::Delay(250)), None),
                entry("e.f", Some(Action::IoError), None),
                entry("g.h", None, None),
            ]
        );
        assert!(parse_spec("nosuchgrammar").is_err());
        assert!(parse_spec("a=frob").is_err());
        assert!(parse_spec("a=panic*x").is_err());
        assert!(parse_spec("=panic").is_err());
        assert!(parse_spec("").unwrap().is_empty());
    }
}
