//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, e.g. `{"op":"ecc","v":17}`. Supported ops:
//!
//! | op            | fields            | answer                          |
//! |---------------|-------------------|---------------------------------|
//! | `ecc`         | `v`               | eccentricity of `v` + farthest  |
//! | `res`         | `u`, `v`          | resistance distance `r(u, v)`   |
//! | `radius`      | —                 | min eccentricity + center node  |
//! | `diameter`    | —                 | max eccentricity + node         |
//! | `whatif-edge` | `s`, `u`, `v`     | ecc of `s` after adding `{u,v}` |
//! | `whatif-remove-edge` | `s`, `u`, `v` | ecc of `s` after deleting `{u,v}` |
//! | `add-edge`    | `u`, `v`          | mutate: insert edge, rank-1     |
//! | `remove-edge` | `u`, `v`          | mutate: delete edge, rank-1     |
//! | `epoch`       | —                 | epoch number + budget state     |
//! | `stats`       | —                 | engine / pool / cache counters  |
//! | `optimize-submit` | `optimizer`, `s`, `k` + knobs | background job id |
//! | `optimize-status` | `job`         | job state + progress counters   |
//! | `optimize-cancel` | `job`         | cooperative cancellation        |
//! | `optimize-events` | `job` (+ `since`, `follow`) | per-iteration NDJSON events |
//! | `optimize-result` | `job` (+ `wait`) | final plan + run telemetry   |
//!
//! The two mutation ops are durably logged (WAL append + fsync) before
//! the ack; their answers carry the edge's effective resistance, the
//! error-budget charge, and the sequence number the write-ahead log
//! assigned.
//!
//! Every request may carry an optional `id` (echoed back verbatim, for
//! pipelined clients) and `deadline_ms` (per-request deadline; the pool
//! drops requests still queued when it expires). Every successful
//! response names the degradation tier that answered (`fast` / `approx`,
//! PR 1's `QueryDiagnostics` made wire-visible) plus compute and queue
//! times in microseconds.

use crate::jobs::JobSpec;
use crate::json::Json;

/// A single query operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Request {
    /// Eccentricity of one node.
    Ecc {
        /// Query node.
        v: usize,
    },
    /// Pairwise resistance distance.
    Res {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// Minimum eccentricity over all nodes (and a node realizing it).
    Radius,
    /// Maximum eccentricity over all nodes (and a node realizing it).
    Diameter,
    /// Eccentricity of `s` after hypothetically adding edge `{u, v}`.
    WhatIfEdge {
        /// Node whose eccentricity is re-estimated.
        s: usize,
        /// First endpoint of the hypothetical edge.
        u: usize,
        /// Second endpoint of the hypothetical edge.
        v: usize,
    },
    /// Durably insert edge `{u, v}` via a rank-1 sketch update.
    AddEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// Durably delete edge `{u, v}` via a rank-1 sketch downdate.
    RemoveEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// Eccentricity of `s` after hypothetically deleting edge `{u, v}`.
    WhatIfRemoveEdge {
        /// Node whose eccentricity is re-estimated.
        s: usize,
        /// First endpoint of the hypothetical removal.
        u: usize,
        /// Second endpoint of the hypothetical removal.
        v: usize,
    },
    /// Current epoch number, budget state, and re-sketch progress.
    Epoch,
    /// Engine, pool, and cache statistics.
    Stats,
    /// Submit a background optimization job.
    OptimizeSubmit {
        /// The job's full spec (optimizer, problem instance, knobs).
        spec: JobSpec,
    },
    /// State and progress of one job.
    OptimizeStatus {
        /// Job id from `optimize-submit`.
        job: u64,
    },
    /// Cooperatively cancel one job.
    OptimizeCancel {
        /// Job id from `optimize-submit`.
        job: u64,
    },
    /// Stream per-iteration progress events for one job.
    OptimizeEvents {
        /// Job id from `optimize-submit`.
        job: u64,
        /// First event index to return (skip already-seen ones).
        since: u64,
        /// Block until the job finishes, streaming events as they land.
        follow: bool,
    },
    /// Final plan of one job.
    OptimizeResult {
        /// Job id from `optimize-submit`.
        job: u64,
        /// Block until the job reaches a terminal state.
        wait: bool,
    },
}

impl Request {
    /// The protocol name of this operation.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Ecc { .. } => "ecc",
            Request::Res { .. } => "res",
            Request::Radius => "radius",
            Request::Diameter => "diameter",
            Request::WhatIfEdge { .. } => "whatif-edge",
            Request::WhatIfRemoveEdge { .. } => "whatif-remove-edge",
            Request::AddEdge { .. } => "add-edge",
            Request::RemoveEdge { .. } => "remove-edge",
            Request::Epoch => "epoch",
            Request::Stats => "stats",
            Request::OptimizeSubmit { .. } => "optimize-submit",
            Request::OptimizeStatus { .. } => "optimize-status",
            Request::OptimizeCancel { .. } => "optimize-cancel",
            Request::OptimizeEvents { .. } => "optimize-events",
            Request::OptimizeResult { .. } => "optimize-result",
        }
    }
}

/// A request plus its wire envelope (client id, deadline).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestEnvelope {
    /// Echoed back in the response when present.
    pub id: Option<u64>,
    /// Per-request deadline in milliseconds from submission.
    pub deadline_ms: Option<u64>,
    /// The operation itself.
    pub request: Request,
}

/// Parse one request line.
///
/// # Errors
///
/// A human-readable message suitable for a `parse` / `bad-request` error
/// response.
pub fn parse_request(line: &str) -> Result<RequestEnvelope, String> {
    let value = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    if !matches!(value, Json::Obj(_)) {
        return Err("request must be a JSON object".to_string());
    }
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| "request needs a string \"op\" field".to_string())?;
    let field = |name: &str| -> Result<usize, String> {
        value
            .get(name)
            .ok_or_else(|| format!("op {op:?} needs field {name:?}"))?
            .as_usize()
            .ok_or_else(|| format!("field {name:?} must be a non-negative integer"))
    };
    let opt_usize = |name: &str, default: usize| -> Result<usize, String> {
        match value.get(name) {
            None => Ok(default),
            Some(v) => v
                .as_usize()
                .ok_or_else(|| format!("field {name:?} must be a non-negative integer")),
        }
    };
    let opt_bool = |name: &str, default: bool| -> Result<bool, String> {
        match value.get(name) {
            None => Ok(default),
            Some(v) => v.as_bool().ok_or_else(|| format!("field {name:?} must be a boolean")),
        }
    };
    let request = match op {
        "ecc" => Request::Ecc { v: field("v")? },
        "res" => Request::Res { u: field("u")?, v: field("v")? },
        "radius" => Request::Radius,
        "diameter" => Request::Diameter,
        "whatif-edge" => Request::WhatIfEdge { s: field("s")?, u: field("u")?, v: field("v")? },
        "whatif-remove-edge" => {
            Request::WhatIfRemoveEdge { s: field("s")?, u: field("u")?, v: field("v")? }
        }
        "add-edge" => Request::AddEdge { u: field("u")?, v: field("v")? },
        "remove-edge" => Request::RemoveEdge { u: field("u")?, v: field("v")? },
        "epoch" => Request::Epoch,
        "stats" => Request::Stats,
        "optimize-submit" => {
            let name = value
                .get("optimizer")
                .and_then(Json::as_str)
                .ok_or("op \"optimize-submit\" needs a string \"optimizer\" field")?;
            let optimizer = crate::jobs::OptimizerKind::parse(name).ok_or_else(|| {
                format!(
                    "unknown optimizer {name:?} (known: simple, farminrecc, cenminrecc, \
                     chminrecc, minrecc)"
                )
            })?;
            let eps = match value.get("eps") {
                None => 0.3,
                Some(v) => v.as_f64().ok_or("field \"eps\" must be a number")?,
            };
            Request::OptimizeSubmit {
                spec: JobSpec {
                    optimizer,
                    source: field("s")?,
                    k: field("k")?,
                    eps,
                    threads: opt_usize("threads", 0)?,
                    block_size: opt_usize("block_size", 0)?,
                    lazy: opt_bool("lazy", false)?,
                    remd: opt_bool("remd", true)?,
                    seed: opt_usize("seed", 0)? as u64,
                },
            }
        }
        "optimize-status" => Request::OptimizeStatus { job: field("job")? as u64 },
        "optimize-cancel" => Request::OptimizeCancel { job: field("job")? as u64 },
        "optimize-events" => Request::OptimizeEvents {
            job: field("job")? as u64,
            since: opt_usize("since", 0)? as u64,
            follow: opt_bool("follow", false)?,
        },
        "optimize-result" => Request::OptimizeResult {
            job: field("job")? as u64,
            wait: opt_bool("wait", false)?,
        },
        other => {
            return Err(format!(
                "unknown op {other:?} (known: ecc, res, radius, diameter, whatif-edge, \
                 whatif-remove-edge, add-edge, remove-edge, epoch, stats, optimize-submit, \
                 optimize-status, optimize-cancel, optimize-events, optimize-result)"
            ))
        }
    };
    let id = match value.get("id") {
        None => None,
        Some(v) => {
            Some(v.as_usize().map(|x| x as u64).ok_or("field \"id\" must be an integer")?)
        }
    };
    let deadline_ms = match value.get("deadline_ms") {
        None => None,
        Some(v) => Some(
            v.as_usize().map(|x| x as u64).ok_or("field \"deadline_ms\" must be an integer")?,
        ),
    };
    Ok(RequestEnvelope { id, deadline_ms, request })
}

/// Machine-readable failure classes, mirrored on the wire as the
/// `"error"` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not valid protocol JSON.
    Parse,
    /// The request was well-formed but semantically invalid (node out of
    /// range, self-loop edge, …).
    BadRequest,
    /// The bounded queue was full — explicit backpressure, never blocking.
    Overloaded,
    /// The request's deadline expired before a worker picked it up.
    DeadlineExceeded,
    /// A worker failed internally (including a contained panic).
    Internal,
    /// The pool is draining: the request was refused at admission, or was
    /// still queued when the drain deadline passed.
    Draining,
}

impl ErrorKind {
    /// The wire name of this error class.
    pub fn wire_name(&self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline-exceeded",
            ErrorKind::Internal => "internal",
            ErrorKind::Draining => "draining",
        }
    }
}

/// Engine / pool / cache counters returned by the `stats` op.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// Graph order `n`.
    pub nodes: usize,
    /// Graph size `m`.
    pub edges: usize,
    /// Representation-level graph fingerprint (hex on the wire).
    pub fingerprint: u64,
    /// Sketch `ε`.
    pub epsilon: f64,
    /// Sketch dimension `d` (after any row drops).
    pub dimension: usize,
    /// Hull boundary size `l`.
    pub hull_size: usize,
    /// Sketch rows still degraded after the repair ladder.
    pub degraded_rows: usize,
    /// The tier eccentricity queries are answered at.
    pub tier: &'static str,
    /// Worker thread count.
    pub threads: usize,
    /// Bounded queue depth.
    pub queue_depth: usize,
    /// Requests answered so far (any outcome).
    pub served: u64,
    /// Worker panics contained by the supervision layer.
    pub panics_total: u64,
    /// Workers respawned after a contained panic.
    pub workers_respawned: u64,
    /// Requests answered with `draining` because they were still queued
    /// past a drain deadline.
    pub dropped_on_drain: u64,
    /// Transient-error retries needed to load the serving snapshot.
    pub snapshot_retries: u64,
    /// Cache-missing `whatif-edge` requests answered by the pool-held
    /// evaluator scratch (cache hits are not counted here).
    pub whatif_served: u64,
    /// Total wall time spent in those what-if solves, in microseconds
    /// (divide by `whatif_served` for the mean solve latency).
    pub whatif_micros_total: u64,
    /// Eccentricity-family requests answered through a coalesced flush
    /// of two or more (they shared one batched panel sweep).
    pub batched_requests: u64,
    /// Coalescing drain cycles: every dequeue of an eccentricity-family
    /// request while the batch window was open, whatever it found.
    pub batch_flushes: u64,
    /// Sum of flush occupancies; divide by `batch_flushes` for the
    /// average batch size the coalescer is achieving.
    pub batch_occupancy_sum: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache evictions.
    pub cache_evictions: u64,
    /// Entries currently cached.
    pub cache_entries: usize,
    /// Current serving epoch (bumped by each completed re-sketch).
    pub epoch: u64,
    /// Mutations applied over the engine's life (startup replay included).
    pub mutations_applied: u64,
    /// Error budget left in the current epoch.
    pub error_budget_remaining: f64,
    /// Background re-sketches completed.
    pub resketches_total: u64,
    /// Durable write-ahead log length in bytes (0 without `--wal-dir`).
    pub wal_bytes: u64,
    /// WAL records replayed when this process started.
    pub wal_replayed_on_start: u64,
    /// Optimization jobs accepted (all zeros when the job runner is
    /// disabled).
    pub jobs_submitted: u64,
    /// Jobs currently executing on a runner thread.
    pub jobs_running: u64,
    /// Jobs that ran their full budget.
    pub jobs_completed: u64,
    /// Jobs stopped by `optimize-cancel`.
    pub jobs_cancelled: u64,
    /// Jobs that failed (optimizer error, checkpoint i/o, contained
    /// panic).
    pub jobs_failed: u64,
    /// Bytes durably written to job checkpoint files.
    pub job_checkpoint_bytes: u64,
    /// Connections accepted by the TCP transport over its life (all
    /// transport counters are zeros in pipe mode).
    pub connections_accepted: u64,
    /// Connections currently live on the event loop.
    pub connections_active: u64,
    /// Connections shed by admission control (over the connection cap,
    /// or hard-closed under storm pressure).
    pub connections_shed: u64,
    /// Connections closed by a deadline: idle timeout or a write buffer
    /// that stalled past the write timeout.
    pub connections_timed_out: u64,
    /// Request bytes read off client sockets.
    pub bytes_read: u64,
    /// Response bytes written to client sockets.
    pub bytes_written: u64,
    /// Connections shed because their bounded write buffer overflowed
    /// (a client that stopped reading its responses).
    pub write_buffer_sheds: u64,
}

/// What a request produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// An eccentricity-style scalar answer with the realizing node.
    Ecc {
        /// The estimate.
        value: f64,
        /// The node realizing it (farthest node / center / periphery).
        node: usize,
    },
    /// A scalar answer with no associated node.
    Scalar {
        /// The estimate.
        value: f64,
    },
    /// Statistics (boxed: the report is by far the widest variant).
    Stats(Box<StatsReport>),
    /// A durably applied mutation (`add-edge` / `remove-edge`).
    Mutated {
        /// Effective resistance of the mutated edge at apply time.
        r_uv: f64,
        /// Error-budget charge for this mutation.
        cost: f64,
        /// Budget left in the epoch after the charge.
        budget_remaining: f64,
        /// Epoch the mutation was applied in.
        epoch: u64,
        /// Sequence number the write-ahead log assigned.
        seq: u64,
        /// Whether this mutation drained the budget and kicked off a
        /// background re-sketch.
        resketch: bool,
    },
    /// Answer to the `epoch` op.
    EpochInfo {
        /// Current serving epoch.
        epoch: u64,
        /// Mutations applied on top of this epoch's base.
        mutations_in_epoch: u64,
        /// Total per-epoch error budget.
        budget_total: f64,
        /// Budget left.
        budget_remaining: f64,
        /// Whether a background re-sketch is in flight.
        resketch_running: bool,
    },
    /// State of a background optimization job (`optimize-submit` /
    /// `optimize-status` / `optimize-cancel`).
    Job {
        /// Job id.
        job: u64,
        /// `"queued"` / `"running"` / `"completed"` / `"cancelled"` /
        /// `"failed"`.
        state: &'static str,
        /// Failure reason, or empty.
        detail: String,
        /// Iterations committed so far (replayed prefix included).
        iterations: u64,
        /// The job's edge budget.
        k: u64,
    },
    /// Final plan of a finished job (`optimize-result`).
    JobResult {
        /// Job id.
        job: u64,
        /// Terminal (or, without `wait`, current) state name.
        state: &'static str,
        /// Committed plan as `(u, v, score)` triples.
        plan: Vec<(usize, usize, f64)>,
        /// Wall time of the run in microseconds.
        wall_micros: u64,
        /// Whether a re-sketch epoch swap happened mid-job: the plan was
        /// computed against the pinned submit-time epoch.
        epoch_swapped: bool,
        /// Steps replayed from a checkpoint rather than freshly decided.
        resumed: u64,
        /// Failure reason, or empty.
        detail: String,
    },
    /// A failure.
    Error {
        /// Failure class.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

impl Outcome {
    /// Shape a job report as a `Job` status outcome (`optimize-status`,
    /// `optimize-cancel`, the `optimize-submit` ack).
    pub fn job_status(report: &crate::jobs::JobReport) -> Outcome {
        Outcome::Job {
            job: report.job,
            state: report.state,
            detail: report.detail.clone(),
            iterations: report.iterations,
            k: report.k,
        }
    }

    /// Shape a job report as a `JobResult` outcome (`optimize-result`).
    pub fn job_result(report: &crate::jobs::JobReport) -> Outcome {
        Outcome::JobResult {
            job: report.job,
            state: report.state,
            plan: report.plan.clone(),
            wall_micros: report.wall_micros,
            epoch_swapped: report.epoch_swapped,
            resumed: report.resumed,
            detail: report.detail.clone(),
        }
    }
}

/// Serialize one streamed `optimize-events` progress line (no trailing
/// newline). Event lines carry `"event":true` so clients can tell them
/// from the closing status line of the stream.
pub fn render_job_event(id: Option<u64>, job: u64, event: &crate::jobs::JobEvent) -> String {
    let mut fields: Vec<(String, Json)> =
        vec![("ok".into(), Json::Bool(true)), ("op".into(), str_json("optimize-events"))];
    if let Some(id) = id {
        fields.push(("id".into(), Json::Num(id as f64)));
    }
    fields.push(("event".into(), Json::Bool(true)));
    fields.push(("job".into(), Json::Num(job as f64)));
    fields.push(("iteration".into(), Json::Num(event.iteration as f64)));
    fields.push(("u".into(), Json::Num(event.u as f64)));
    fields.push(("v".into(), Json::Num(event.v as f64)));
    fields.push(("score".into(), Json::Num(event.score)));
    fields.push(("full_evals".into(), Json::Num(event.full_evals as f64)));
    fields.push(("lazy_hits".into(), Json::Num(event.lazy_hits as f64)));
    fields.push(("elapsed_micros".into(), Json::Num(event.elapsed_micros as f64)));
    fields.push(("replayed".into(), Json::Bool(event.replayed)));
    Json::Obj(fields).render()
}

/// A complete response, ready to serialize as one output line.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of the request id, when one was given.
    pub id: Option<u64>,
    /// Protocol op name (best-effort `"?"` when the line did not parse).
    pub op: &'static str,
    /// The answer or failure.
    pub outcome: Outcome,
    /// Degradation tier that answered (`fast` / `approx`), for successes.
    pub tier: Option<&'static str>,
    /// Whether the answer came from the result cache.
    pub cached: bool,
    /// Worker compute time in microseconds.
    pub compute_micros: u64,
    /// Time spent waiting in the bounded queue, in microseconds.
    pub queue_micros: u64,
}

impl Response {
    /// Build an error response outside the pool (parse failures,
    /// submission rejections).
    pub fn error(id: Option<u64>, op: &'static str, kind: ErrorKind, message: String) -> Self {
        Response {
            id,
            op,
            outcome: Outcome::Error { kind, message },
            tier: None,
            cached: false,
            compute_micros: 0,
            queue_micros: 0,
        }
    }

    /// Whether this response reports success.
    pub fn is_ok(&self) -> bool {
        !matches!(self.outcome, Outcome::Error { .. })
    }

    /// Serialize to one compact JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let mut fields: Vec<(String, Json)> =
            vec![("ok".into(), Json::Bool(self.is_ok())), ("op".into(), str_json(self.op))];
        if let Some(id) = self.id {
            fields.push(("id".into(), Json::Num(id as f64)));
        }
        match &self.outcome {
            Outcome::Ecc { value, node } => {
                fields.push(("value".into(), Json::Num(*value)));
                fields.push(("node".into(), Json::Num(*node as f64)));
            }
            Outcome::Scalar { value } => {
                fields.push(("value".into(), Json::Num(*value)));
            }
            Outcome::Stats(s) => {
                fields.push(("nodes".into(), Json::Num(s.nodes as f64)));
                fields.push(("edges".into(), Json::Num(s.edges as f64)));
                fields.push((
                    "fingerprint".into(),
                    str_json(&format!("{:#018x}", s.fingerprint)),
                ));
                fields.push(("epsilon".into(), Json::Num(s.epsilon)));
                fields.push(("dimension".into(), Json::Num(s.dimension as f64)));
                fields.push(("hull_size".into(), Json::Num(s.hull_size as f64)));
                fields.push(("degraded_rows".into(), Json::Num(s.degraded_rows as f64)));
                fields.push(("threads".into(), Json::Num(s.threads as f64)));
                fields.push(("queue_depth".into(), Json::Num(s.queue_depth as f64)));
                fields.push(("served".into(), Json::Num(s.served as f64)));
                fields.push(("panics_total".into(), Json::Num(s.panics_total as f64)));
                fields
                    .push(("workers_respawned".into(), Json::Num(s.workers_respawned as f64)));
                fields.push(("dropped_on_drain".into(), Json::Num(s.dropped_on_drain as f64)));
                fields.push(("snapshot_retries".into(), Json::Num(s.snapshot_retries as f64)));
                fields.push(("whatif_served".into(), Json::Num(s.whatif_served as f64)));
                fields.push((
                    "whatif_micros_total".into(),
                    Json::Num(s.whatif_micros_total as f64),
                ));
                fields.push(("batched_requests".into(), Json::Num(s.batched_requests as f64)));
                fields.push(("batch_flushes".into(), Json::Num(s.batch_flushes as f64)));
                fields.push((
                    "batch_occupancy_sum".into(),
                    Json::Num(s.batch_occupancy_sum as f64),
                ));
                fields.push(("cache_hits".into(), Json::Num(s.cache_hits as f64)));
                fields.push(("cache_misses".into(), Json::Num(s.cache_misses as f64)));
                fields.push(("cache_evictions".into(), Json::Num(s.cache_evictions as f64)));
                fields.push(("cache_entries".into(), Json::Num(s.cache_entries as f64)));
                fields.push(("epoch".into(), Json::Num(s.epoch as f64)));
                fields
                    .push(("mutations_applied".into(), Json::Num(s.mutations_applied as f64)));
                fields.push((
                    "error_budget_remaining".into(),
                    Json::Num(s.error_budget_remaining),
                ));
                fields.push(("resketches_total".into(), Json::Num(s.resketches_total as f64)));
                fields.push(("wal_bytes".into(), Json::Num(s.wal_bytes as f64)));
                fields.push((
                    "wal_replayed_on_start".into(),
                    Json::Num(s.wal_replayed_on_start as f64),
                ));
                fields.push(("jobs_submitted".into(), Json::Num(s.jobs_submitted as f64)));
                fields.push(("jobs_running".into(), Json::Num(s.jobs_running as f64)));
                fields.push(("jobs_completed".into(), Json::Num(s.jobs_completed as f64)));
                fields.push(("jobs_cancelled".into(), Json::Num(s.jobs_cancelled as f64)));
                fields.push(("jobs_failed".into(), Json::Num(s.jobs_failed as f64)));
                fields.push((
                    "job_checkpoint_bytes".into(),
                    Json::Num(s.job_checkpoint_bytes as f64),
                ));
                fields.push((
                    "connections_accepted".into(),
                    Json::Num(s.connections_accepted as f64),
                ));
                fields.push((
                    "connections_active".into(),
                    Json::Num(s.connections_active as f64),
                ));
                fields.push(("connections_shed".into(), Json::Num(s.connections_shed as f64)));
                fields.push((
                    "connections_timed_out".into(),
                    Json::Num(s.connections_timed_out as f64),
                ));
                fields.push(("bytes_read".into(), Json::Num(s.bytes_read as f64)));
                fields.push(("bytes_written".into(), Json::Num(s.bytes_written as f64)));
                fields.push((
                    "write_buffer_sheds".into(),
                    Json::Num(s.write_buffer_sheds as f64),
                ));
            }
            Outcome::Mutated { r_uv, cost, budget_remaining, epoch, seq, resketch } => {
                fields.push(("r_uv".into(), Json::Num(*r_uv)));
                fields.push(("cost".into(), Json::Num(*cost)));
                fields.push(("budget_remaining".into(), Json::Num(*budget_remaining)));
                fields.push(("epoch".into(), Json::Num(*epoch as f64)));
                fields.push(("seq".into(), Json::Num(*seq as f64)));
                fields.push(("resketch".into(), Json::Bool(*resketch)));
            }
            Outcome::EpochInfo {
                epoch,
                mutations_in_epoch,
                budget_total,
                budget_remaining,
                resketch_running,
            } => {
                fields.push(("epoch".into(), Json::Num(*epoch as f64)));
                fields
                    .push(("mutations_in_epoch".into(), Json::Num(*mutations_in_epoch as f64)));
                fields.push(("budget_total".into(), Json::Num(*budget_total)));
                fields.push(("budget_remaining".into(), Json::Num(*budget_remaining)));
                fields.push(("resketch_running".into(), Json::Bool(*resketch_running)));
            }
            Outcome::Job { job, state, detail, iterations, k } => {
                fields.push(("job".into(), Json::Num(*job as f64)));
                fields.push(("state".into(), str_json(state)));
                if !detail.is_empty() {
                    fields.push(("detail".into(), str_json(detail)));
                }
                fields.push(("iterations".into(), Json::Num(*iterations as f64)));
                fields.push(("k".into(), Json::Num(*k as f64)));
            }
            Outcome::JobResult {
                job,
                state,
                plan,
                wall_micros,
                epoch_swapped,
                resumed,
                detail,
            } => {
                fields.push(("job".into(), Json::Num(*job as f64)));
                fields.push(("state".into(), str_json(state)));
                if !detail.is_empty() {
                    fields.push(("detail".into(), str_json(detail)));
                }
                let plan_json = plan
                    .iter()
                    .map(|&(u, v, score)| {
                        Json::Arr(vec![
                            Json::Num(u as f64),
                            Json::Num(v as f64),
                            Json::Num(score),
                        ])
                    })
                    .collect();
                fields.push(("plan".into(), Json::Arr(plan_json)));
                fields.push(("wall_micros".into(), Json::Num(*wall_micros as f64)));
                fields.push(("epoch_swapped".into(), Json::Bool(*epoch_swapped)));
                fields.push(("resumed".into(), Json::Num(*resumed as f64)));
            }
            Outcome::Error { kind, message } => {
                fields.push(("error".into(), str_json(kind.wire_name())));
                fields.push(("message".into(), str_json(message)));
            }
        }
        if let Some(tier) = self.tier {
            fields.push(("tier".into(), str_json(tier)));
        }
        if self.is_ok() {
            fields.push(("cached".into(), Json::Bool(self.cached)));
            fields.push(("micros".into(), Json::Num(self.compute_micros as f64)));
            fields.push(("queue_micros".into(), Json::Num(self.queue_micros as f64)));
        }
        Json::Obj(fields).render()
    }
}

fn str_json(s: &str) -> Json {
    Json::Str(s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let cases: Vec<(&str, Request)> = vec![
            (r#"{"op":"ecc","v":17}"#, Request::Ecc { v: 17 }),
            (r#"{"op":"res","u":1,"v":2}"#, Request::Res { u: 1, v: 2 }),
            (r#"{"op":"radius"}"#, Request::Radius),
            (r#"{"op":"diameter"}"#, Request::Diameter),
            (
                r#"{"op":"whatif-edge","s":3,"u":0,"v":9}"#,
                Request::WhatIfEdge { s: 3, u: 0, v: 9 },
            ),
            (
                r#"{"op":"whatif-remove-edge","s":3,"u":0,"v":9}"#,
                Request::WhatIfRemoveEdge { s: 3, u: 0, v: 9 },
            ),
            (r#"{"op":"add-edge","u":4,"v":11}"#, Request::AddEdge { u: 4, v: 11 }),
            (r#"{"op":"remove-edge","u":4,"v":11}"#, Request::RemoveEdge { u: 4, v: 11 }),
            (r#"{"op":"epoch"}"#, Request::Epoch),
            (r#"{"op":"stats"}"#, Request::Stats),
            (r#"{"op":"optimize-status","job":5}"#, Request::OptimizeStatus { job: 5 }),
            (r#"{"op":"optimize-cancel","job":0}"#, Request::OptimizeCancel { job: 0 }),
            (
                r#"{"op":"optimize-events","job":2}"#,
                Request::OptimizeEvents { job: 2, since: 0, follow: false },
            ),
            (
                r#"{"op":"optimize-events","job":2,"since":4,"follow":true}"#,
                Request::OptimizeEvents { job: 2, since: 4, follow: true },
            ),
            (
                r#"{"op":"optimize-result","job":1,"wait":true}"#,
                Request::OptimizeResult { job: 1, wait: true },
            ),
        ];
        for (line, expected) in cases {
            let env = parse_request(line).unwrap();
            assert_eq!(env.request, expected, "{line}");
            assert_eq!(env.id, None);
        }
    }

    #[test]
    fn envelope_fields_are_optional_but_typed() {
        let env = parse_request(r#"{"op":"ecc","v":1,"id":9,"deadline_ms":250}"#).unwrap();
        assert_eq!(env.id, Some(9));
        assert_eq!(env.deadline_ms, Some(250));
        assert!(parse_request(r#"{"op":"ecc","v":1,"id":"x"}"#).is_err());
        assert!(parse_request(r#"{"op":"ecc","v":1,"deadline_ms":-5}"#).is_err());
    }

    #[test]
    fn optimize_submit_parses_spec_with_defaults() {
        use crate::jobs::OptimizerKind;
        let env = parse_request(r#"{"op":"optimize-submit","optimizer":"simple","s":3,"k":2}"#)
            .unwrap();
        let Request::OptimizeSubmit { spec } = env.request else { panic!("{env:?}") };
        assert_eq!(spec.optimizer, OptimizerKind::Simple);
        assert_eq!((spec.source, spec.k), (3, 2));
        assert_eq!(spec.eps, 0.3);
        assert_eq!((spec.threads, spec.block_size, spec.seed), (0, 0, 0));
        assert!(!spec.lazy);
        assert!(spec.remd, "SIMPLE defaults to the source-incident problem");

        let env = parse_request(
            r#"{"op":"optimize-submit","optimizer":"minrecc","s":0,"k":4,"eps":0.5,
               "threads":2,"block_size":8,"lazy":true,"remd":false,"seed":9}"#,
        )
        .unwrap();
        let Request::OptimizeSubmit { spec } = env.request else { panic!("{env:?}") };
        assert_eq!(spec.optimizer, OptimizerKind::MinRecc);
        assert_eq!(spec.eps, 0.5);
        assert_eq!((spec.threads, spec.block_size, spec.seed), (2, 8, 9));
        assert!(spec.lazy && !spec.remd);

        for (line, needle) in [
            (r#"{"op":"optimize-submit","s":0,"k":1}"#, "\"optimizer\""),
            (r#"{"op":"optimize-submit","optimizer":"frob","s":0,"k":1}"#, "unknown optimizer"),
            (r#"{"op":"optimize-submit","optimizer":"simple","k":1}"#, "needs field \"s\""),
            (
                r#"{"op":"optimize-submit","optimizer":"simple","s":0,"k":1,"lazy":3}"#,
                "must be a boolean",
            ),
            (r#"{"op":"optimize-events","job":1,"since":-2}"#, "non-negative"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn job_outcomes_render_their_fields() {
        let resp = Response {
            id: None,
            op: "optimize-submit",
            outcome: Outcome::Job {
                job: 7,
                state: "queued",
                detail: String::new(),
                iterations: 0,
                k: 3,
            },
            tier: None,
            cached: false,
            compute_micros: 2,
            queue_micros: 0,
        };
        let v = Json::parse(&resp.render()).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("job").unwrap().as_usize(), Some(7));
        assert_eq!(v.get("state").unwrap().as_str(), Some("queued"));
        assert_eq!(v.get("k").unwrap().as_usize(), Some(3));
        assert!(v.get("detail").is_none(), "empty detail omitted");

        let resp = Response {
            id: Some(1),
            op: "optimize-result",
            outcome: Outcome::JobResult {
                job: 7,
                state: "completed",
                plan: vec![(0, 4, 1.5), (2, 3, 1.25)],
                wall_micros: 900,
                epoch_swapped: true,
                resumed: 1,
                detail: String::new(),
            },
            tier: None,
            cached: false,
            compute_micros: 1,
            queue_micros: 0,
        };
        let line = resp.render();
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("state").unwrap().as_str(), Some("completed"));
        assert_eq!(v.get("wall_micros").unwrap().as_usize(), Some(900));
        assert_eq!(v.get("epoch_swapped").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("resumed").unwrap().as_usize(), Some(1));
        assert!(line.contains("\"plan\":[[0,4,1.5],[2,3,1.25]]"), "{line}");
    }

    #[test]
    fn rejects_malformed_requests_with_reasons() {
        for (line, needle) in [
            ("not json", "invalid JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"v":1}"#, "\"op\""),
            (r#"{"op":"frob"}"#, "unknown op"),
            (r#"{"op":"ecc"}"#, "needs field"),
            (r#"{"op":"ecc","v":-3}"#, "non-negative"),
            (r#"{"op":"res","u":1}"#, "needs field \"v\""),
            (r#"{"op":"add-edge","u":1}"#, "needs field \"v\""),
            (r#"{"op":"remove-edge","v":1}"#, "needs field \"u\""),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn success_response_renders_contract_fields() {
        let resp = Response {
            id: Some(4),
            op: "ecc",
            outcome: Outcome::Ecc { value: 2.5, node: 19 },
            tier: Some("fast"),
            cached: true,
            compute_micros: 12,
            queue_micros: 3,
        };
        let line = resp.render();
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("op").unwrap().as_str(), Some("ecc"));
        assert_eq!(v.get("id").unwrap().as_usize(), Some(4));
        assert_eq!(v.get("value").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("node").unwrap().as_usize(), Some(19));
        assert_eq!(v.get("tier").unwrap().as_str(), Some("fast"));
        assert_eq!(v.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("micros").unwrap().as_usize(), Some(12));
        assert_eq!(v.get("queue_micros").unwrap().as_usize(), Some(3));
    }

    #[test]
    fn mutation_and_epoch_outcomes_render_their_fields() {
        let resp = Response {
            id: None,
            op: "add-edge",
            outcome: Outcome::Mutated {
                r_uv: 0.75,
                cost: 0.75 / 1.75,
                budget_remaining: 0.1,
                epoch: 2,
                seq: 40,
                resketch: true,
            },
            tier: None,
            cached: false,
            compute_micros: 8,
            queue_micros: 1,
        };
        let v = Json::parse(&resp.render()).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("r_uv").unwrap().as_f64(), Some(0.75));
        assert_eq!(v.get("epoch").unwrap().as_usize(), Some(2));
        assert_eq!(v.get("seq").unwrap().as_usize(), Some(40));
        assert_eq!(v.get("resketch").unwrap().as_bool(), Some(true));

        let resp = Response {
            id: None,
            op: "epoch",
            outcome: Outcome::EpochInfo {
                epoch: 3,
                mutations_in_epoch: 5,
                budget_total: 0.3,
                budget_remaining: 0.05,
                resketch_running: false,
            },
            tier: None,
            cached: false,
            compute_micros: 1,
            queue_micros: 0,
        };
        let v = Json::parse(&resp.render()).unwrap();
        assert_eq!(v.get("epoch").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("mutations_in_epoch").unwrap().as_usize(), Some(5));
        assert_eq!(v.get("budget_total").unwrap().as_f64(), Some(0.3));
        assert_eq!(v.get("resketch_running").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn error_response_renders_kind_and_message() {
        let resp =
            Response::error(None, "ecc", ErrorKind::Overloaded, "queue full (depth 1)".into());
        let v = Json::parse(&resp.render()).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("error").unwrap().as_str(), Some("overloaded"));
        assert!(v.get("message").unwrap().as_str().unwrap().contains("queue full"));
        assert!(v.get("cached").is_none(), "errors carry no timing block");
    }

    #[test]
    fn error_kinds_have_distinct_wire_names() {
        let kinds = [
            ErrorKind::Parse,
            ErrorKind::BadRequest,
            ErrorKind::Overloaded,
            ErrorKind::DeadlineExceeded,
            ErrorKind::Internal,
            ErrorKind::Draining,
        ];
        let mut names: Vec<&str> = kinds.iter().map(ErrorKind::wire_name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }
}
