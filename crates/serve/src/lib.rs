#![warn(missing_docs)]
//! # reecc-serve
//!
//! The query-serving subsystem: everything needed to run the resistance
//! eccentricity engine as a long-lived service instead of a one-shot CLI
//! invocation.
//!
//! The dominant cost of every query pipeline is building the APPROXER
//! sketch (`m · log n · ε⁻²` CG solves). A service should pay it once:
//!
//! * [`snapshot`] — a versioned, checksummed binary format persisting the
//!   sketch rows, hull boundary, and build diagnostics, keyed to the
//!   graph by a representation-level fingerprint. Loading a snapshot
//!   restores a [`reecc_core::QueryEngine`] in milliseconds.
//! * [`pool`] — a hand-rolled worker thread pool (std::thread + mpsc)
//!   around `Arc<QueryEngine>` with a bounded request queue, explicit
//!   `overloaded` backpressure, per-request deadlines, a sharded LRU
//!   result cache, panic containment (`catch_unwind` + supervisor
//!   respawn), and a deadline-bounded graceful drain.
//! * [`wal`] — a crash-safe write-ahead edge log: every accepted
//!   `add-edge` / `remove-edge` mutation is appended and fsynced before
//!   the ack, with per-record FNV-1a checksums and torn-tail-tolerant
//!   replay, so `kill -9` at any point is recoverable.
//! * [`live`] — the live mutable engine: error-budgeted rank-1 sketch
//!   updates applied in place, epoch-swapped background re-sketch when
//!   the budget drains, and startup recovery (snapshot + WAL replay).
//! * [`jobs`] — optimization-as-a-service: the greedy edge-addition
//!   optimizers run as background jobs on a low-priority runner pool,
//!   with per-iteration progress events, cooperative cancellation, and
//!   crash-safe checkpointed resume (`job-<id>.reeccjob` files with the
//!   WAL's durability discipline).
//! * [`failpoint`] — deterministic fault injection (panics, delays, I/O
//!   errors) at named sites, armed programmatically or via
//!   `REECC_FAILPOINTS`; one relaxed atomic load when disarmed.
//! * [`protocol`] — newline-delimited JSON requests and responses
//!   (`{"op":"ecc","v":17}`), every answer carrying the degradation tier
//!   and timing.
//! * [`server`] — the transports: a session loop over stdin/stdout (pipe
//!   mode) and a readiness-driven `poll(2)` event loop over TCP (one
//!   reactor thread owning every connection state machine, with admission
//!   control, bounded write buffers, and timer-wheel deadlines).
//! * [`sys`] — the thin std-only OS shim the reactor needs (`poll(2)`,
//!   SIGTERM→flag, `RLIMIT_NOFILE`), declared directly against the C
//!   runtime (the workspace is offline; no libc crate).
//! * [`timer`] — the lazy hashed timer wheel behind the reactor's idle
//!   and write-stall deadlines (`O(1)` schedule, validate-on-fire).
//! * [`json`] — the minimal JSON value parser/printer the protocol uses
//!   (the workspace is offline; no serde).
//!
//! ```
//! use std::io::BufReader;
//! use std::sync::Arc;
//! use reecc_core::{QueryEngine, SketchParams};
//! use reecc_graph::generators::barabasi_albert;
//! use reecc_serve::pool::{PoolConfig, ServePool};
//! use reecc_serve::server::serve_pipe;
//!
//! let g = barabasi_albert(60, 2, 7);
//! let engine = QueryEngine::build(&g, &SketchParams::with_epsilon(0.4)).unwrap();
//! let pool = ServePool::new(Arc::new(engine), PoolConfig::default());
//! let input = b"{\"op\":\"ecc\",\"v\":0}\n{\"op\":\"stats\"}\n";
//! let mut output = Vec::new();
//! let stats = serve_pipe(&pool, BufReader::new(&input[..]), &mut output).unwrap();
//! assert_eq!(stats.requests, 2);
//! assert!(String::from_utf8(output).unwrap().contains("\"ok\":true"));
//! ```

pub mod cache;
pub mod failpoint;
pub mod jobs;
pub mod json;
pub mod live;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod snapshot;
pub mod sys;
pub mod timer;
pub mod wal;

pub use jobs::{
    JobEvent, JobReport, JobRunner, JobSpec, JobStats, JobSubmitError, JobsConfig,
    OptimizerKind,
};
pub use live::{LiveConfig, LiveEngine, LiveError};
pub use pool::{DrainReport, PoolConfig, ServePool, SubmitError};
pub use protocol::{ErrorKind, Request, RequestEnvelope, Response};
pub use server::{
    serve_pipe, ServerConfig, SessionStats, TcpServer, TransportSnapshot, TransportStats,
};
pub use snapshot::{RetryPolicy, SketchSnapshot, SnapshotError};
pub use wal::{WalError, WalOp, WalRecord, WalWriter};
