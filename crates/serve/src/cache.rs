//! A sharded LRU result cache for query answers.
//!
//! Keys carry the graph fingerprint, so a cache can never serve answers
//! computed for a different graph (a restarted server with a new snapshot
//! simply misses). Sharding keeps lock contention bounded: each key hashes
//! to one of `shards` independently locked maps, so concurrent workers
//! only collide when they touch the same shard.
//!
//! Recency is tracked with a per-shard monotonic tick; eviction removes
//! the smallest tick. That makes eviction `O(shard size)` — with the
//! default 512-entry shards this is a few hundred comparisons on the rare
//! full-shard insert, which profiles far below one CG solve. The usual
//! linked-list LRU would buy `O(1)` eviction at the cost of unsafe code or
//! index juggling; not worth it at these sizes.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What a cached query is keyed on: the op, its arguments, and the graph
/// fingerprint the answer was computed against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheKey {
    /// `ecc` of a node.
    Ecc(u64, usize),
    /// `res` between an (ordered) pair.
    Res(u64, usize, usize),
    /// Graph radius.
    Radius(u64),
    /// Graph diameter.
    Diameter(u64),
    /// What-if eccentricity of `s` after adding `{u, v}` (ordered).
    WhatIf(u64, usize, usize, usize),
    /// What-if eccentricity of `s` after removing `{u, v}` (ordered).
    WhatIfRemove(u64, usize, usize, usize),
}

/// A cached scalar answer plus the node realizing it (unused for `res`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedAnswer {
    /// The scalar answer.
    pub value: f64,
    /// The realizing node (farthest node, center, …; 0 when meaningless).
    pub node: usize,
}

#[derive(Debug)]
struct Shard {
    map: HashMap<CacheKey, (u64, CachedAnswer)>,
    tick: u64,
    capacity: usize,
}

impl Shard {
    fn touch(&mut self, key: &CacheKey) -> Option<CachedAnswer> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|slot| {
            slot.0 = tick;
            slot.1
        })
    }

    fn insert(&mut self, key: CacheKey, answer: CachedAnswer) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let mut evicted = false;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self.map.iter().min_by_key(|(_, (t, _))| *t).map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
                evicted = true;
            }
        }
        self.map.insert(key, (tick, answer));
        evicted
    }
}

/// Counters exported by [`ShardedLru::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident (across all shards).
    pub entries: usize,
}

/// The sharded LRU cache.
#[derive(Debug)]
pub struct ShardedLru {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ShardedLru {
    /// A cache holding up to `capacity` entries split across `shards`
    /// independently locked shards (both clamped to at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.max(1).div_ceil(shards);
        ShardedLru {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                        capacity: per_shard.max(1),
                    })
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<CachedAnswer> {
        let hit = self.shard(key).lock().expect("cache shard poisoned").touch(key);
        match hit {
            Some(answer) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(answer)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) an answer.
    pub fn insert(&self, key: CacheKey, answer: CachedAnswer) {
        let evicted =
            self.shard(&key).lock().expect("cache shard poisoned").insert(key, answer);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache shard poisoned").map.len())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FP: u64 = 0xfeed;

    #[test]
    fn get_after_insert_hits() {
        let cache = ShardedLru::new(64, 4);
        let key = CacheKey::Ecc(FP, 7);
        assert_eq!(cache.get(&key), None);
        cache.insert(key, CachedAnswer { value: 2.5, node: 3 });
        assert_eq!(cache.get(&key), Some(CachedAnswer { value: 2.5, node: 3 }));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn fingerprint_partitions_the_key_space() {
        let cache = ShardedLru::new(64, 4);
        cache.insert(CacheKey::Ecc(1, 0), CachedAnswer { value: 1.0, node: 0 });
        assert_eq!(cache.get(&CacheKey::Ecc(2, 0)), None);
        assert!(cache.get(&CacheKey::Ecc(1, 0)).is_some());
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        // One shard so the LRU order is globally observable.
        let cache = ShardedLru::new(2, 1);
        let (a, b, c) = (CacheKey::Ecc(FP, 1), CacheKey::Ecc(FP, 2), CacheKey::Ecc(FP, 3));
        cache.insert(a, CachedAnswer { value: 1.0, node: 0 });
        cache.insert(b, CachedAnswer { value: 2.0, node: 0 });
        // Touch `a` so `b` is the LRU entry, then overflow.
        assert!(cache.get(&a).is_some());
        cache.insert(c, CachedAnswer { value: 3.0, node: 0 });
        assert!(cache.get(&a).is_some(), "recently used entry must survive");
        assert_eq!(cache.get(&b), None, "LRU entry must be evicted");
        assert!(cache.get(&c).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = ShardedLru::new(2, 1);
        let a = CacheKey::Radius(FP);
        cache.insert(a, CachedAnswer { value: 1.0, node: 0 });
        cache.insert(CacheKey::Diameter(FP), CachedAnswer { value: 2.0, node: 0 });
        cache.insert(a, CachedAnswer { value: 1.5, node: 4 });
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(&a).unwrap().value, 1.5);
    }

    #[test]
    fn concurrent_access_is_safe_and_consistent() {
        let cache = std::sync::Arc::new(ShardedLru::new(1024, 8));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200usize {
                        let key = CacheKey::Res(FP, i % 50, (i + t as usize) % 50);
                        cache.insert(key, CachedAnswer { value: i as f64, node: 0 });
                        let _ = cache.get(&key);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.stats().entries <= 1024);
        assert!(cache.stats().hits > 0);
    }

    /// Many threads, several distinct fingerprints, a deliberately small
    /// cache so eviction churns constantly. Two invariants under fire:
    /// every hit returns the value that was inserted for *exactly* that
    /// key (a wrong-fingerprint or wrong-node serve would show up as a
    /// value mismatch), and the counters stay consistent (hits + misses
    /// equals the number of lookups issued).
    #[test]
    fn hammer_small_cache_never_serves_a_wrong_answer() {
        // Value encoding makes every (fingerprint, node) pair's correct
        // answer recomputable by the reader.
        fn expected(fp: u64, node: usize) -> f64 {
            (fp * 10_000 + node as u64) as f64
        }

        let cache = std::sync::Arc::new(ShardedLru::new(64, 4));
        let threads = 8u64;
        let iters = 2_000usize;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    let fp = 100 + (t % 3); // 3 fingerprints shared across threads
                    let mut gets = 0u64;
                    for i in 0..iters {
                        let node = (i * 7 + t as usize) % 97;
                        let key = CacheKey::Ecc(fp, node);
                        if i % 3 != 0 {
                            cache.insert(key, CachedAnswer { value: expected(fp, node), node });
                        }
                        // Probe our own key and a neighboring fingerprint's.
                        for probe_fp in [fp, 100 + ((t + 1) % 3)] {
                            let probe = CacheKey::Ecc(probe_fp, node);
                            gets += 1;
                            if let Some(hit) = cache.get(&probe) {
                                assert_eq!(
                                    hit.value,
                                    expected(probe_fp, node),
                                    "cache served a wrong answer for fp={probe_fp} node={node}"
                                );
                            }
                        }
                    }
                    gets
                })
            })
            .collect();
        let total_gets: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let stats = cache.stats();
        assert_eq!(
            stats.hits + stats.misses,
            total_gets,
            "counter drift under concurrency: {stats:?} vs {total_gets} lookups"
        );
        assert!(stats.evictions > 0, "a 64-entry cache under this load must evict");
        assert!(stats.entries <= 64 + 4, "entries bounded by capacity (plus shard slack)");
    }
}
