//! Optimization-as-a-service: background jobs running the greedy
//! edge-addition optimizers with progress streaming, cooperative
//! cancellation, and checkpointed crash-safe resume.
//!
//! A job is one `*_controlled` optimizer run (see `reecc_opt::control`)
//! executed on a dedicated low-priority runner pool instead of a worker
//! thread: `optimize-submit` acks with a job id immediately, and the
//! greedy loop then proceeds in the background, yielding briefly between
//! iterations whenever the query pool has requests in flight. Each job
//! pins the [`EpochView`] that was published at submit time, so a
//! background re-sketch swapping epochs mid-job never changes the graph
//! under the optimizer — the swap is *detected* and reported in the
//! job's result instead.
//!
//! # Checkpoint file (`job-<id>.reeccjob`)
//!
//! Same durability discipline as the write-ahead log (`crate::wal`):
//! fixed-width little-endian records, an FNV-1a checksum on everything,
//! `write + flush + sync_data` before any acknowledgement, and a parser
//! in which **every** prefix truncation of a valid file is either a
//! typed error or a tolerated torn tail — never a panic and never
//! silently-wrong state.
//!
//! ```text
//! header (86 bytes):
//!   magic        8  b"REECCJOB"
//!   version      4  u32 = 1
//!   job_id       8  u64
//!   fingerprint  8  u64   graph the plan applies to
//!   optimizer    1  u8    OptimizerKind code
//!   flags        1  u8    bit0 = lazy, bit1 = remd
//!   source       8  u64
//!   k            8  u64
//!   eps          8  f64 bits
//!   threads      8  u64
//!   block_size   8  u64
//!   seed         8  u64
//!   checksum     8  FNV-1a over the preceding 78 bytes
//! record (32 bytes, one per accepted edge, in commit order):
//!   u            8  u64   canonical u < v
//!   v            8  u64
//!   score        8  f64 bits (the iteration's selection score)
//!   checksum     8  FNV-1a over the preceding 24 bytes
//! ```
//!
//! The header is durable before `optimize-submit` acks; a record is
//! durable before the optimizer is allowed to start the next iteration
//! (the append runs inside the run's observer, and an append failure
//! aborts the run as a cleanly failed job). `kill -9` at any byte
//! boundary therefore recovers to a resumable prefix: a torn record
//! tail is truncated on restart and the job re-enqueued with the intact
//! prefix, which the optimizer replays bitwise-deterministically (see
//! the resume-strategy table in `reecc_opt::control`).

use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use reecc_graph::fingerprint::Fnv1a;
use reecc_graph::{Edge, Graph};
use reecc_opt::{
    cen_min_recc_controlled, ch_min_recc_controlled, far_min_recc_controlled,
    min_recc_controlled, simple_greedy_controlled, ControlledRun, IterationEvent, OptError,
    OptimizeParams, Problem, RunControl, SimpleOptions,
};

use crate::failpoint;
use crate::live::{EpochView, LiveEngine};
use crate::snapshot::sync_parent_dir;

/// Magic prefix of every job checkpoint file.
pub const MAGIC: [u8; 8] = *b"REECCJOB";
/// Current checkpoint format version.
pub const FORMAT_VERSION: u32 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 86;
/// Fixed per-edge record length in bytes.
pub const RECORD_LEN: usize = 32;

/// Which optimizer a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// SIMPLE exact greedy (Algorithm 4), REMD or REM per the spec flag.
    Simple,
    /// FARMINRECC (Algorithm 5), REMD.
    Far,
    /// CENMINRECC (Algorithm 6), REMD.
    Cen,
    /// CHMINRECC (Algorithm 8), REM.
    Ch,
    /// MINRECC (Algorithm 9), REM.
    MinRecc,
}

impl OptimizerKind {
    /// Protocol name (`"simple"` / `"farminrecc"` / …).
    pub fn name(&self) -> &'static str {
        match self {
            OptimizerKind::Simple => "simple",
            OptimizerKind::Far => "farminrecc",
            OptimizerKind::Cen => "cenminrecc",
            OptimizerKind::Ch => "chminrecc",
            OptimizerKind::MinRecc => "minrecc",
        }
    }

    /// Parse a protocol name.
    pub fn parse(name: &str) -> Option<OptimizerKind> {
        match name {
            "simple" => Some(OptimizerKind::Simple),
            "farminrecc" => Some(OptimizerKind::Far),
            "cenminrecc" => Some(OptimizerKind::Cen),
            "chminrecc" => Some(OptimizerKind::Ch),
            "minrecc" => Some(OptimizerKind::MinRecc),
            _ => None,
        }
    }

    /// On-disk code byte.
    pub fn code(&self) -> u8 {
        match self {
            OptimizerKind::Simple => 0,
            OptimizerKind::Far => 1,
            OptimizerKind::Cen => 2,
            OptimizerKind::Ch => 3,
            OptimizerKind::MinRecc => 4,
        }
    }

    /// Inverse of [`OptimizerKind::code`].
    pub fn from_code(code: u8) -> Option<OptimizerKind> {
        match code {
            0 => Some(OptimizerKind::Simple),
            1 => Some(OptimizerKind::Far),
            2 => Some(OptimizerKind::Cen),
            3 => Some(OptimizerKind::Ch),
            4 => Some(OptimizerKind::MinRecc),
            _ => None,
        }
    }
}

/// Everything that determines a job's computation (and therefore its
/// bitwise-deterministic resume): optimizer, problem instance, and the
/// evaluator knobs. Serialized verbatim into the checkpoint header.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpec {
    /// Which optimizer to run.
    pub optimizer: OptimizerKind,
    /// Source node `s` whose eccentricity the plan minimizes.
    pub source: usize,
    /// Edge budget `k`.
    pub k: usize,
    /// Sketch `ε` for the heuristic optimizers (SIMPLE is exact and
    /// ignores it).
    pub eps: f64,
    /// Worker threads for candidate scoring; `0` = auto.
    pub threads: usize,
    /// Blocked-CG batch width; `0` = adaptive default.
    pub block_size: usize,
    /// CELF lazy re-evaluation (SIMPLE only).
    pub lazy: bool,
    /// SIMPLE problem choice: `true` = REMD (source-incident candidates),
    /// `false` = REM. The heuristics fix their own problem and ignore it.
    pub remd: bool,
    /// Sketch seed for the heuristic optimizers.
    pub seed: u64,
}

impl JobSpec {
    fn flags(&self) -> u8 {
        (self.lazy as u8) | ((self.remd as u8) << 1)
    }

    fn params(&self) -> OptimizeParams {
        let mut params = OptimizeParams::with_epsilon(self.eps);
        params.sketch.seed = self.seed;
        params.sketch.threads = self.threads;
        params.sketch.block_size = self.block_size;
        params
    }
}

/// One checkpointed greedy step: an accepted edge and its selection
/// score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRecord {
    /// First endpoint (canonical `u < v`).
    pub u: usize,
    /// Second endpoint.
    pub v: usize,
    /// Selection score of the iteration that committed this edge.
    pub score: f64,
}

/// Typed failures from reading or writing a checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFileError {
    /// Underlying filesystem failure (including armed `job.checkpoint`
    /// failpoints).
    Io(String),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The header names a format version this build cannot read.
    UnsupportedVersion(u32),
    /// The file is shorter than a complete header.
    Truncated {
        /// Observed file length.
        len: usize,
    },
    /// A checksum mismatch or impossible field inside the file.
    Corrupt {
        /// Byte offset of the offending region.
        offset: usize,
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for JobFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobFileError::Io(msg) => write!(f, "job checkpoint i/o error: {msg}"),
            JobFileError::BadMagic => write!(f, "not a job checkpoint (bad magic)"),
            JobFileError::UnsupportedVersion(v) => {
                write!(f, "unsupported job checkpoint format version {v}")
            }
            JobFileError::Truncated { len } => {
                write!(f, "job checkpoint truncated inside the header ({len} bytes)")
            }
            JobFileError::Corrupt { offset, detail } => {
                write!(f, "job checkpoint corrupt at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for JobFileError {}

fn u64_at(bytes: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("8 bytes"))
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// Serialize a checkpoint header.
pub fn encode_header(job_id: u64, fingerprint: u64, spec: &JobSpec) -> [u8; HEADER_LEN] {
    let mut out = [0u8; HEADER_LEN];
    out[..8].copy_from_slice(&MAGIC);
    out[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    out[12..20].copy_from_slice(&job_id.to_le_bytes());
    out[20..28].copy_from_slice(&fingerprint.to_le_bytes());
    out[28] = spec.optimizer.code();
    out[29] = spec.flags();
    out[30..38].copy_from_slice(&(spec.source as u64).to_le_bytes());
    out[38..46].copy_from_slice(&(spec.k as u64).to_le_bytes());
    out[46..54].copy_from_slice(&spec.eps.to_bits().to_le_bytes());
    out[54..62].copy_from_slice(&(spec.threads as u64).to_le_bytes());
    out[62..70].copy_from_slice(&(spec.block_size as u64).to_le_bytes());
    out[70..78].copy_from_slice(&spec.seed.to_le_bytes());
    let sum = checksum(&out[..HEADER_LEN - 8]);
    out[78..86].copy_from_slice(&sum.to_le_bytes());
    out
}

/// Serialize one accepted-edge record.
pub fn encode_record(rec: &JobRecord) -> [u8; RECORD_LEN] {
    let mut out = [0u8; RECORD_LEN];
    out[..8].copy_from_slice(&(rec.u as u64).to_le_bytes());
    out[8..16].copy_from_slice(&(rec.v as u64).to_le_bytes());
    out[16..24].copy_from_slice(&rec.score.to_bits().to_le_bytes());
    let sum = checksum(&out[..RECORD_LEN - 8]);
    out[24..32].copy_from_slice(&sum.to_le_bytes());
    out
}

/// A fully parsed checkpoint file.
#[derive(Debug, Clone, PartialEq)]
pub struct JobCheckpoint {
    /// Job id from the header.
    pub job_id: u64,
    /// Graph fingerprint the plan applies to.
    pub fingerprint: u64,
    /// The job's spec.
    pub spec: JobSpec,
    /// Accepted edges in commit order.
    pub records: Vec<JobRecord>,
    /// Bytes of a torn trailing record (crash mid-append), excluded from
    /// `records`. The writer truncates them before resuming.
    pub torn_bytes: usize,
}

fn decode_header(bytes: &[u8]) -> Result<(u64, u64, JobSpec), JobFileError> {
    if bytes.len() < HEADER_LEN {
        return Err(JobFileError::Truncated { len: bytes.len() });
    }
    if bytes[..8] != MAGIC {
        return Err(JobFileError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(JobFileError::UnsupportedVersion(version));
    }
    let expected = u64_at(bytes, HEADER_LEN - 8);
    let actual = checksum(&bytes[..HEADER_LEN - 8]);
    if expected != actual {
        return Err(JobFileError::Corrupt {
            offset: 0,
            detail: format!("header checksum {actual:#018x} != recorded {expected:#018x}"),
        });
    }
    let optimizer = OptimizerKind::from_code(bytes[28]).ok_or(JobFileError::Corrupt {
        offset: 28,
        detail: format!("unknown optimizer code {}", bytes[28]),
    })?;
    let flags = bytes[29];
    if flags & !0b11 != 0 {
        return Err(JobFileError::Corrupt {
            offset: 29,
            detail: format!("unknown flag bits {flags:#04x}"),
        });
    }
    let spec = JobSpec {
        optimizer,
        source: u64_at(bytes, 30) as usize,
        k: u64_at(bytes, 38) as usize,
        eps: f64::from_bits(u64_at(bytes, 46)),
        threads: u64_at(bytes, 54) as usize,
        block_size: u64_at(bytes, 62) as usize,
        lazy: flags & 0b01 != 0,
        remd: flags & 0b10 != 0,
        seed: u64_at(bytes, 70),
    };
    Ok((u64_at(bytes, 12), u64_at(bytes, 20), spec))
}

fn decode_record(bytes: &[u8], offset: usize) -> Result<JobRecord, JobFileError> {
    let expected = u64_at(bytes, offset + RECORD_LEN - 8);
    let actual = checksum(&bytes[offset..offset + RECORD_LEN - 8]);
    if expected != actual {
        return Err(JobFileError::Corrupt {
            offset,
            detail: format!("record checksum {actual:#018x} != recorded {expected:#018x}"),
        });
    }
    let u = u64_at(bytes, offset) as usize;
    let v = u64_at(bytes, offset + 8) as usize;
    if u >= v {
        return Err(JobFileError::Corrupt {
            offset,
            detail: format!("non-canonical edge ({u}, {v}); records require u < v"),
        });
    }
    Ok(JobRecord { u, v, score: f64::from_bits(u64_at(bytes, offset + 16)) })
}

/// Parse a checkpoint file image. A trailing partial record is tolerated
/// as `torn_bytes` (crash mid-append); everything else that is not a
/// byte-exact valid file is a typed error.
///
/// # Errors
///
/// [`JobFileError`] as described on each variant.
pub fn parse_job_file(bytes: &[u8]) -> Result<JobCheckpoint, JobFileError> {
    let (job_id, fingerprint, spec) = decode_header(bytes)?;
    let mut records = Vec::new();
    let mut offset = HEADER_LEN;
    while offset + RECORD_LEN <= bytes.len() {
        records.push(decode_record(bytes, offset)?);
        offset += RECORD_LEN;
    }
    Ok(JobCheckpoint { job_id, fingerprint, spec, records, torn_bytes: bytes.len() - offset })
}

/// Durable checkpoint appender, mirroring `crate::wal::WalWriter`:
/// `write + flush + sync_data` before success, length rollback on
/// failure, and the `job.checkpoint` failpoint checked before any byte
/// is written.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: std::fs::File,
    bytes: u64,
}

impl CheckpointWriter {
    /// Create a fresh checkpoint: header only, durably on disk (file
    /// synced, parent directory synced) before this returns.
    ///
    /// # Errors
    ///
    /// [`JobFileError::Io`] on any filesystem failure.
    pub fn create(
        path: &Path,
        job_id: u64,
        fingerprint: u64,
        spec: &JobSpec,
    ) -> Result<CheckpointWriter, JobFileError> {
        let io = |e: std::io::Error| JobFileError::Io(format!("{}: {e}", path.display()));
        let mut file = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(io)?;
        file.write_all(&encode_header(job_id, fingerprint, spec)).map_err(io)?;
        file.flush().map_err(io)?;
        file.sync_data().map_err(io)?;
        sync_parent_dir(path);
        Ok(CheckpointWriter { file, bytes: HEADER_LEN as u64 })
    }

    /// Reopen an existing checkpoint for appending: parse it, truncate
    /// any torn trailing record, and seek to the end. Returns the writer
    /// and the parsed state.
    ///
    /// # Errors
    ///
    /// [`JobFileError`] if the file is unreadable or damaged beyond a
    /// torn tail.
    pub fn open_append(path: &Path) -> Result<(CheckpointWriter, JobCheckpoint), JobFileError> {
        let io = |e: std::io::Error| JobFileError::Io(format!("{}: {e}", path.display()));
        let mut file =
            std::fs::OpenOptions::new().read(true).write(true).open(path).map_err(io)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io)?;
        let checkpoint = parse_job_file(&bytes)?;
        let consumed = (bytes.len() - checkpoint.torn_bytes) as u64;
        if checkpoint.torn_bytes > 0 {
            file.set_len(consumed).map_err(io)?;
            file.sync_data().map_err(io)?;
        }
        file.seek(SeekFrom::Start(consumed)).map_err(io)?;
        Ok((CheckpointWriter { file, bytes: consumed }, checkpoint))
    }

    /// Durably append one accepted-edge record. On failure the file is
    /// rolled back to its pre-append length, so a failed append never
    /// leaves a torn record for the *next* open to trip over.
    ///
    /// # Errors
    ///
    /// [`JobFileError::Io`] on write/sync failure or an armed
    /// `job.checkpoint` failpoint.
    pub fn append(&mut self, rec: &JobRecord) -> Result<u64, JobFileError> {
        failpoint::hit("job.checkpoint").map_err(JobFileError::Io)?;
        let encoded = encode_record(rec);
        let result = self
            .file
            .write_all(&encoded)
            .and_then(|()| self.file.flush())
            .and_then(|()| self.file.sync_data());
        match result {
            Ok(()) => {
                self.bytes += RECORD_LEN as u64;
                Ok(self.bytes)
            }
            Err(e) => {
                let _ = self.file.set_len(self.bytes);
                let _ = self.file.seek(SeekFrom::Start(self.bytes));
                Err(JobFileError::Io(format!("append failed: {e}")))
            }
        }
    }

    /// Current durable length in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Knobs for the job subsystem.
#[derive(Debug, Clone, Default)]
pub struct JobsConfig {
    /// Concurrent background jobs (runner threads). `0` disables the
    /// subsystem entirely: every `optimize-*` op answers `bad-request`.
    pub max_jobs: usize,
    /// Bounded submit-queue depth; a full queue answers `overloaded`.
    pub queue_depth: usize,
    /// Directory for durable checkpoints. `None` = jobs run without
    /// checkpoints and do not survive a restart.
    pub job_dir: Option<PathBuf>,
}

/// What a failed `optimize-submit` maps to on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSubmitError {
    /// The spec is semantically invalid (`bad-request`).
    Invalid(String),
    /// The job queue is full (`overloaded`).
    Overloaded(String),
    /// Creating the durable checkpoint failed (`internal`).
    Io(String),
}

impl std::fmt::Display for JobSubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobSubmitError::Invalid(msg)
            | JobSubmitError::Overloaded(msg)
            | JobSubmitError::Io(msg) => f.write_str(msg),
        }
    }
}

/// One per-iteration progress event, streamed by `optimize-events`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobEvent {
    /// Zero-based global iteration index.
    pub iteration: usize,
    /// Chosen edge, canonical `u < v`.
    pub u: usize,
    /// Second endpoint.
    pub v: usize,
    /// Selection score.
    pub score: f64,
    /// Fresh candidate evaluations this iteration.
    pub full_evals: usize,
    /// Lazy-greedy re-evaluations skipped this iteration.
    pub lazy_hits: usize,
    /// Microseconds from run start to this event (0 for replayed ones).
    pub elapsed_micros: u64,
    /// Whether this iteration was replayed from a checkpoint rather than
    /// freshly decided in this process.
    pub replayed: bool,
}

/// Terminal payload of a finished (completed or cancelled) job.
#[derive(Debug, Clone, PartialEq, Default)]
struct JobOutcome {
    steps: Vec<JobRecord>,
    wall_micros: u64,
    epoch_swapped: bool,
    resumed: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum JobStatus {
    Queued,
    Running,
    Completed(JobOutcome),
    Cancelled(JobOutcome),
    Failed(String),
}

impl JobStatus {
    fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Completed(_) => "completed",
            JobStatus::Cancelled(_) => "cancelled",
            JobStatus::Failed(_) => "failed",
        }
    }

    fn is_terminal(&self) -> bool {
        matches!(self, JobStatus::Completed(_) | JobStatus::Cancelled(_) | JobStatus::Failed(_))
    }
}

/// A point-in-time snapshot of one job, shaped for the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Job id.
    pub job: u64,
    /// `"queued"` / `"running"` / `"completed"` / `"cancelled"` /
    /// `"failed"`.
    pub state: &'static str,
    /// Failure reason, or empty.
    pub detail: String,
    /// Iterations committed so far (replayed prefix included).
    pub iterations: u64,
    /// The job's edge budget.
    pub k: u64,
    /// Committed plan `(u, v, score)` — terminal states only, empty
    /// while the job is queued or running.
    pub plan: Vec<(usize, usize, f64)>,
    /// Wall time of the run in microseconds (terminal states only).
    pub wall_micros: u64,
    /// Whether a re-sketch epoch swap happened between submit and
    /// finish: the plan was computed against the pinned submit-time
    /// epoch, not the currently served one.
    pub epoch_swapped: bool,
    /// Steps replayed from a checkpoint rather than freshly decided.
    pub resumed: u64,
}

struct JobInner {
    status: JobStatus,
    events: Vec<JobEvent>,
}

struct JobEntry {
    id: u64,
    spec: JobSpec,
    /// Epoch view pinned at submit: the graph the whole run (and any
    /// future resume) is computed against.
    view: Arc<EpochView>,
    submit_epoch: u64,
    /// Checkpointed prefix to replay before fresh decisions.
    resume: Vec<JobRecord>,
    cancel: AtomicBool,
    writer: Mutex<Option<CheckpointWriter>>,
    path: Option<PathBuf>,
    inner: Mutex<JobInner>,
    cv: Condvar,
}

impl JobEntry {
    fn report(&self) -> JobReport {
        let inner = self.inner.lock().expect("job state poisoned");
        let (detail, plan, wall_micros, epoch_swapped, resumed) = match &inner.status {
            JobStatus::Completed(out) | JobStatus::Cancelled(out) => (
                String::new(),
                out.steps.iter().map(|r| (r.u, r.v, r.score)).collect(),
                out.wall_micros,
                out.epoch_swapped,
                out.resumed as u64,
            ),
            JobStatus::Failed(msg) => (msg.clone(), Vec::new(), 0, false, 0),
            _ => (String::new(), Vec::new(), 0, false, 0),
        };
        JobReport {
            job: self.id,
            state: inner.status.name(),
            detail,
            iterations: inner.events.len() as u64,
            k: self.spec.k as u64,
            plan,
            wall_micros,
            epoch_swapped,
            resumed,
        }
    }

    fn set_status(&self, status: JobStatus) {
        let mut inner = self.inner.lock().expect("job state poisoned");
        inner.status = status;
        self.cv.notify_all();
    }

    fn push_event(&self, event: JobEvent) {
        let mut inner = self.inner.lock().expect("job state poisoned");
        inner.events.push(event);
        self.cv.notify_all();
    }
}

/// How the runner probes for query-pool pressure: `true` = requests are
/// waiting or executing, so background jobs should yield.
pub type BusyProbe = Box<dyn Fn() -> bool + Send + Sync>;

/// The background job subsystem: a registry of jobs plus `max_jobs`
/// low-priority runner threads fed by a bounded queue.
pub struct JobRunner {
    live: Arc<LiveEngine>,
    job_dir: Option<PathBuf>,
    tx: Mutex<Option<SyncSender<Arc<JobEntry>>>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    registry: Mutex<HashMap<u64, Arc<JobEntry>>>,
    next_id: AtomicU64,
    busy: BusyProbe,
    shutting_down: AtomicBool,
    jobs_submitted: AtomicU64,
    jobs_running: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_failed: AtomicU64,
    checkpoint_bytes: AtomicU64,
    resumed_on_start: AtomicU64,
}

impl std::fmt::Debug for JobRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobRunner")
            .field("job_dir", &self.job_dir)
            .field("submitted", &self.jobs_submitted.load(Ordering::Relaxed))
            .field("running", &self.jobs_running.load(Ordering::Relaxed))
            .finish()
    }
}

/// Counter snapshot for the `stats` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobStats {
    /// Jobs accepted by `optimize-submit` (startup resumes included).
    pub submitted: u64,
    /// Jobs currently executing on a runner thread.
    pub running: u64,
    /// Jobs that ran their full budget.
    pub completed: u64,
    /// Jobs stopped by `optimize-cancel`.
    pub cancelled: u64,
    /// Jobs that failed (optimizer error, checkpoint i/o failure, or a
    /// contained panic).
    pub failed: u64,
    /// Bytes durably written to checkpoint files over this runner's life.
    pub checkpoint_bytes: u64,
}

fn checkpoint_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("job-{id}.reeccjob"))
}

fn id_from_path(path: &Path) -> Option<u64> {
    path.file_name()?.to_str()?.strip_prefix("job-")?.strip_suffix(".reeccjob")?.parse().ok()
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "opaque panic".to_string())
}

/// Dispatch one job spec to its `*_controlled` optimizer.
fn run_optimizer(
    g: &Graph,
    spec: &JobSpec,
    ctrl: &mut RunControl<'_>,
) -> Result<ControlledRun, OptError> {
    match spec.optimizer {
        OptimizerKind::Simple => simple_greedy_controlled(
            g,
            if spec.remd { Problem::Remd } else { Problem::Rem },
            spec.k,
            spec.source,
            SimpleOptions { threads: spec.threads, lazy: spec.lazy },
            ctrl,
        ),
        OptimizerKind::Far => {
            far_min_recc_controlled(g, spec.k, spec.source, &spec.params(), ctrl)
        }
        OptimizerKind::Cen => {
            cen_min_recc_controlled(g, spec.k, spec.source, &spec.params(), ctrl)
        }
        OptimizerKind::Ch => {
            ch_min_recc_controlled(g, spec.k, spec.source, &spec.params(), ctrl)
        }
        OptimizerKind::MinRecc => {
            min_recc_controlled(g, spec.k, spec.source, &spec.params(), ctrl)
        }
    }
}

impl JobRunner {
    /// Start the subsystem: scan `job_dir` for checkpoints left by a
    /// previous process (re-enqueueing resumable ones, surfacing damaged
    /// ones as cleanly failed jobs), then spawn the runner threads.
    ///
    /// `busy` is polled between greedy iterations; while it returns
    /// `true` the job yields (bounded) so interactive queries keep their
    /// latency.
    ///
    /// # Errors
    ///
    /// A message when `max_jobs` is zero or the checkpoint directory
    /// cannot be created or scanned.
    pub fn start(
        live: Arc<LiveEngine>,
        config: &JobsConfig,
        busy: BusyProbe,
    ) -> Result<Arc<JobRunner>, String> {
        if config.max_jobs == 0 {
            return Err("max_jobs must be at least 1 (0 disables the subsystem)".to_string());
        }
        if let Some(dir) = &config.job_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
        let runner = Arc::new(JobRunner {
            live,
            job_dir: config.job_dir.clone(),
            tx: Mutex::new(None),
            threads: Mutex::new(Vec::new()),
            registry: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            busy,
            shutting_down: AtomicBool::new(false),
            jobs_submitted: AtomicU64::new(0),
            jobs_running: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            checkpoint_bytes: AtomicU64::new(0),
            resumed_on_start: AtomicU64::new(0),
        });
        let resumable = runner.scan_job_dir()?;
        let (tx, rx) = std::sync::mpsc::sync_channel(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        {
            let mut threads = runner.threads.lock().expect("runner threads poisoned");
            for i in 0..config.max_jobs {
                let me = Arc::clone(&runner);
                let rx = Arc::clone(&rx);
                let handle = std::thread::Builder::new()
                    .name(format!("reecc-job-runner-{i}"))
                    .spawn(move || me.runner_loop(&rx))
                    .map_err(|e| format!("cannot spawn job runner: {e}"))?;
                threads.push(handle);
            }
        }
        // Re-enqueue resumed jobs with the runners already draining, so a
        // backlog longer than the queue never deadlocks startup.
        for entry in resumable {
            runner.jobs_submitted.fetch_add(1, Ordering::Relaxed);
            runner.resumed_on_start.fetch_add(1, Ordering::Relaxed);
            if tx.send(entry).is_err() {
                break;
            }
        }
        *runner.tx.lock().expect("runner tx poisoned") = Some(tx);
        Ok(runner)
    }

    /// Jobs re-enqueued from checkpoints when this runner started.
    pub fn resumed_on_start(&self) -> u64 {
        self.resumed_on_start.load(Ordering::Relaxed)
    }

    /// Scan the checkpoint directory: returns resumable entries to
    /// enqueue; damaged files become registered `failed` jobs.
    fn scan_job_dir(&self) -> Result<Vec<Arc<JobEntry>>, String> {
        let Some(dir) = &self.job_dir else { return Ok(Vec::new()) };
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot scan {}: {e}", dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| id_from_path(p).is_some())
            .collect();
        paths.sort();
        let view = self.live.view();
        let epoch = self.live.epoch();
        let mut resumable = Vec::new();
        for path in paths {
            let file_id = id_from_path(&path).expect("filtered above");
            self.next_id.fetch_max(file_id + 1, Ordering::Relaxed);
            let fail = |msg: String, keep: bool| -> Arc<JobEntry> {
                if !keep {
                    let _ = std::fs::remove_file(&path);
                }
                self.jobs_failed.fetch_add(1, Ordering::Relaxed);
                Arc::new(JobEntry {
                    id: file_id,
                    spec: JobSpec {
                        optimizer: OptimizerKind::Simple,
                        source: 0,
                        k: 0,
                        eps: 0.0,
                        threads: 0,
                        block_size: 0,
                        lazy: false,
                        remd: false,
                        seed: 0,
                    },
                    view: Arc::clone(&view),
                    submit_epoch: epoch,
                    resume: Vec::new(),
                    cancel: AtomicBool::new(false),
                    writer: Mutex::new(None),
                    path: None,
                    inner: Mutex::new(JobInner {
                        status: JobStatus::Failed(msg),
                        events: Vec::new(),
                    }),
                    cv: Condvar::new(),
                })
            };
            let entry = match CheckpointWriter::open_append(&path) {
                // A header-torn file predates the submit ack: the client
                // never learned the id, so remove it and move on.
                Err(JobFileError::Truncated { len }) => fail(
                    format!("checkpoint header torn at {len} bytes (submit never acked)"),
                    false,
                ),
                // Deeper damage is surfaced, and the evidence kept.
                Err(e) => fail(format!("unreadable checkpoint: {e}"), true),
                Ok((writer, checkpoint)) => {
                    if checkpoint.fingerprint != view.fingerprint {
                        fail(
                            format!(
                                "graph fingerprint changed since checkpoint \
                                 ({:#018x} != {:#018x}); plan not resumable",
                                checkpoint.fingerprint, view.fingerprint
                            ),
                            true,
                        )
                    } else {
                        self.checkpoint_bytes.fetch_add(writer.bytes(), Ordering::Relaxed);
                        let events = checkpoint
                            .records
                            .iter()
                            .enumerate()
                            .map(|(i, r)| JobEvent {
                                iteration: i,
                                u: r.u,
                                v: r.v,
                                score: r.score,
                                full_evals: 0,
                                lazy_hits: 0,
                                elapsed_micros: 0,
                                replayed: true,
                            })
                            .collect();
                        let entry = Arc::new(JobEntry {
                            id: checkpoint.job_id,
                            spec: checkpoint.spec,
                            view: Arc::clone(&view),
                            submit_epoch: epoch,
                            resume: checkpoint.records,
                            cancel: AtomicBool::new(false),
                            writer: Mutex::new(Some(writer)),
                            path: Some(path.clone()),
                            inner: Mutex::new(JobInner { status: JobStatus::Queued, events }),
                            cv: Condvar::new(),
                        });
                        resumable.push(Arc::clone(&entry));
                        entry
                    }
                }
            };
            self.registry.lock().expect("job registry poisoned").insert(entry.id, entry);
        }
        Ok(resumable)
    }

    /// Submit a new job. The checkpoint header (when a job directory is
    /// configured) is durable before this returns the id.
    ///
    /// # Errors
    ///
    /// [`JobSubmitError`] — invalid spec, full queue, or checkpoint i/o.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, JobSubmitError> {
        let view = self.live.view();
        let n = view.engine.graph().node_count();
        if spec.source >= n {
            return Err(JobSubmitError::Invalid(format!(
                "source {} out of range for {n}-node graph",
                spec.source
            )));
        }
        if spec.k == 0 {
            return Err(JobSubmitError::Invalid("budget k must be at least 1".to_string()));
        }
        if !(spec.eps.is_finite() && spec.eps > 0.0) {
            return Err(JobSubmitError::Invalid(format!(
                "eps must be positive, got {}",
                spec.eps
            )));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let path = self.job_dir.as_ref().map(|dir| checkpoint_path(dir, id));
        let writer = match &path {
            Some(p) => {
                let w = CheckpointWriter::create(p, id, view.fingerprint, &spec)
                    .map_err(|e| JobSubmitError::Io(e.to_string()))?;
                self.checkpoint_bytes.fetch_add(w.bytes(), Ordering::Relaxed);
                Some(w)
            }
            None => None,
        };
        let entry = Arc::new(JobEntry {
            id,
            spec,
            view,
            submit_epoch: self.live.epoch(),
            resume: Vec::new(),
            cancel: AtomicBool::new(false),
            writer: Mutex::new(writer),
            path: path.clone(),
            inner: Mutex::new(JobInner { status: JobStatus::Queued, events: Vec::new() }),
            cv: Condvar::new(),
        });
        let tx = self.tx.lock().expect("runner tx poisoned");
        let Some(tx) = tx.as_ref() else {
            if let Some(p) = &path {
                let _ = std::fs::remove_file(p);
            }
            return Err(JobSubmitError::Invalid("job runner is shut down".to_string()));
        };
        match tx.try_send(Arc::clone(&entry)) {
            Ok(()) => {
                self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
                self.registry.lock().expect("job registry poisoned").insert(id, entry);
                Ok(id)
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                if let Some(p) = &path {
                    let _ = std::fs::remove_file(p);
                }
                Err(JobSubmitError::Overloaded("job queue full".to_string()))
            }
        }
    }

    /// Snapshot one job's state. `None` for an unknown id.
    pub fn status(&self, id: u64) -> Option<JobReport> {
        self.entry(id).map(|e| e.report())
    }

    /// Request cooperative cancellation: the job stops within one
    /// candidate block. Returns the (possibly not yet terminal) state.
    pub fn cancel(&self, id: u64) -> Option<JobReport> {
        let entry = self.entry(id)?;
        entry.cancel.store(true, Ordering::Relaxed);
        {
            // A job still waiting in the queue flips to `cancelled`
            // immediately; the runner skips terminal entries. Counter
            // and file cleanup land before the status is visible.
            let mut inner = entry.inner.lock().expect("job state poisoned");
            if matches!(inner.status, JobStatus::Queued) {
                self.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
                self.cleanup_checkpoint(&entry);
                inner.status = JobStatus::Cancelled(JobOutcome::default());
                entry.cv.notify_all();
            }
        }
        Some(entry.report())
    }

    /// Block until the job reaches a terminal state, up to `timeout`.
    /// Returns the latest report either way; `None` for an unknown id.
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<JobReport> {
        let entry = self.entry(id)?;
        let deadline = Instant::now() + timeout;
        let mut inner = entry.inner.lock().expect("job state poisoned");
        while !inner.status.is_terminal() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) =
                entry.cv.wait_timeout(inner, deadline - now).expect("job state poisoned");
            inner = guard;
        }
        drop(inner);
        Some(entry.report())
    }

    /// Events from index `since` onward, plus whether the job is
    /// terminal. When `follow` is set, blocks (up to `timeout`) until at
    /// least one new event exists or the job finishes.
    pub fn events(
        &self,
        id: u64,
        since: usize,
        follow: bool,
        timeout: Duration,
    ) -> Option<(Vec<JobEvent>, bool)> {
        let entry = self.entry(id)?;
        let deadline = Instant::now() + timeout;
        let mut inner = entry.inner.lock().expect("job state poisoned");
        if follow {
            while inner.events.len() <= since && !inner.status.is_terminal() {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) =
                    entry.cv.wait_timeout(inner, deadline - now).expect("job state poisoned");
                inner = guard;
            }
        }
        let events = inner.events.get(since..).unwrap_or(&[]).to_vec();
        Some((events, inner.status.is_terminal()))
    }

    /// Counter snapshot for the `stats` op.
    pub fn stats(&self) -> JobStats {
        JobStats {
            submitted: self.jobs_submitted.load(Ordering::Relaxed),
            running: self.jobs_running.load(Ordering::Relaxed),
            completed: self.jobs_completed.load(Ordering::Relaxed),
            cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            failed: self.jobs_failed.load(Ordering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
        }
    }

    /// Stop the subsystem: no new submissions, running jobs are asked to
    /// stop cooperatively, and every checkpoint is **kept** so the next
    /// process resumes where this one left off.
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        // Closing the channel makes runner threads exit once drained; the
        // shutdown flag makes them skip (not run) still-queued entries.
        *self.tx.lock().expect("runner tx poisoned") = None;
        let registry = self.registry.lock().expect("job registry poisoned");
        for entry in registry.values() {
            entry.cancel.store(true, Ordering::Relaxed);
        }
        drop(registry);
        let mut threads = self.threads.lock().expect("runner threads poisoned");
        for handle in threads.drain(..) {
            let _ = handle.join();
        }
    }

    fn entry(&self, id: u64) -> Option<Arc<JobEntry>> {
        self.registry.lock().expect("job registry poisoned").get(&id).cloned()
    }

    fn runner_loop(self: Arc<Self>, rx: &Mutex<Receiver<Arc<JobEntry>>>) {
        loop {
            let entry = {
                let guard = rx.lock().expect("runner rx poisoned");
                guard.recv()
            };
            let Ok(entry) = entry else { return };
            if self.shutting_down.load(Ordering::SeqCst) {
                // Leave the entry queued with its checkpoint intact; the
                // next process resumes it.
                continue;
            }
            self.execute_entry(&entry);
        }
    }

    fn execute_entry(&self, entry: &Arc<JobEntry>) {
        {
            let mut inner = entry.inner.lock().expect("job state poisoned");
            if inner.status.is_terminal() {
                return; // cancelled while queued
            }
            inner.status = JobStatus::Running;
            entry.cv.notify_all();
        }
        self.jobs_running.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        // Containment: a panicking optimizer (or an armed `job.iterate`
        // panic failpoint) fails only this job, never the runner thread.
        let result = catch_unwind(AssertUnwindSafe(|| self.run_entry(entry, start)));
        self.jobs_running.fetch_sub(1, Ordering::Relaxed);
        let wall_micros = start.elapsed().as_micros() as u64;
        match result {
            Ok(Ok(run)) => {
                let mut steps: Vec<JobRecord> = run
                    .steps
                    .iter()
                    .map(|st| JobRecord { u: st.edge.u, v: st.edge.v, score: st.score })
                    .collect();
                // Fast-replay optimizers do not re-score the prefix; the
                // checkpointed scores are the authoritative ones.
                for (i, st) in steps.iter_mut().enumerate().take(run.resumed) {
                    if st.score.is_nan() {
                        st.score = entry.resume[i].score;
                    }
                }
                let outcome = JobOutcome {
                    steps,
                    wall_micros,
                    epoch_swapped: self.live.epoch() != entry.submit_epoch,
                    resumed: run.resumed,
                };
                // Counters and checkpoint cleanup must land BEFORE the
                // terminal status is published: `wait` returns the
                // instant the status flips, and callers read the stats
                // (and the filesystem) right after.
                if run.cancelled {
                    if self.shutting_down.load(Ordering::SeqCst) {
                        // Interrupted by shutdown, not by the client:
                        // keep the checkpoint so the next process
                        // resumes, and report the interruption.
                        self.jobs_failed.fetch_add(1, Ordering::Relaxed);
                        entry.set_status(JobStatus::Failed(
                            "interrupted by shutdown (checkpoint kept)".to_string(),
                        ));
                    } else {
                        self.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
                        self.cleanup_checkpoint(entry);
                        entry.set_status(JobStatus::Cancelled(outcome));
                    }
                } else {
                    self.jobs_completed.fetch_add(1, Ordering::Relaxed);
                    self.cleanup_checkpoint(entry);
                    entry.set_status(JobStatus::Completed(outcome));
                }
            }
            Ok(Err(e)) => {
                // Keep the checkpoint: it is the evidence, and a resume
                // after the cause is fixed may still succeed.
                self.jobs_failed.fetch_add(1, Ordering::Relaxed);
                entry.set_status(JobStatus::Failed(e.to_string()));
            }
            Err(payload) => {
                self.jobs_failed.fetch_add(1, Ordering::Relaxed);
                entry.set_status(JobStatus::Failed(format!(
                    "job panicked: {}",
                    panic_message(payload)
                )));
            }
        }
    }

    fn run_entry(
        &self,
        entry: &Arc<JobEntry>,
        start: Instant,
    ) -> Result<ControlledRun, OptError> {
        let resume: Vec<Edge> = entry.resume.iter().map(|r| Edge::new(r.u, r.v)).collect();
        let mut writer = entry.writer.lock().expect("checkpoint writer poisoned").take();
        let mut observer = |ev: &IterationEvent| -> Result<(), String> {
            failpoint::hit("job.iterate")?;
            self.yield_to_queries();
            if let Some(w) = writer.as_mut() {
                let rec = JobRecord { u: ev.edge.u, v: ev.edge.v, score: ev.score };
                w.append(&rec).map_err(|e| e.to_string())?;
                self.checkpoint_bytes.fetch_add(RECORD_LEN as u64, Ordering::Relaxed);
            }
            entry.push_event(JobEvent {
                iteration: ev.iteration,
                u: ev.edge.u,
                v: ev.edge.v,
                score: ev.score,
                full_evals: ev.full_evals,
                lazy_hits: ev.lazy_hits,
                elapsed_micros: start.elapsed().as_micros() as u64,
                replayed: false,
            });
            Ok(())
        };
        let mut ctrl = RunControl {
            cancel: Some(&entry.cancel),
            resume: &resume,
            observer: Some(&mut observer),
        };
        run_optimizer(entry.view.engine.graph(), &entry.spec, &mut ctrl)
    }

    /// Bounded politeness between iterations: back off while the query
    /// pool has requests in flight, but never stall a job more than
    /// ~20 ms per iteration.
    fn yield_to_queries(&self) {
        for _ in 0..20 {
            if !(self.busy)() {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    fn cleanup_checkpoint(&self, entry: &JobEntry) {
        if let Some(path) = &entry.path {
            // Drop the writer's handle first so the unlink is the last
            // reference on every platform.
            *entry.writer.lock().expect("checkpoint writer poisoned") = None;
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for JobRunner {
    fn drop(&mut self) {
        // `shutdown` is idempotent; make drop safe without it.
        self.shutting_down.store(true, Ordering::SeqCst);
        *self.tx.lock().expect("runner tx poisoned") = None;
        let mut threads = self.threads.lock().expect("runner threads poisoned");
        for handle in threads.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reecc_core::{QueryEngine, SketchParams};
    use reecc_graph::generators::{barabasi_albert, cycle};

    fn spec(optimizer: OptimizerKind, k: usize) -> JobSpec {
        JobSpec {
            optimizer,
            source: 1,
            k,
            eps: 0.4,
            threads: 1,
            block_size: 0,
            lazy: false,
            remd: true,
            seed: 7,
        }
    }

    fn live(g: &Graph) -> Arc<LiveEngine> {
        let engine = Arc::new(
            QueryEngine::build(
                g,
                &SketchParams { epsilon: 0.4, seed: 5, ..Default::default() },
            )
            .unwrap(),
        );
        LiveEngine::ephemeral(engine, Some(1000.0))
    }

    fn runner(live: &Arc<LiveEngine>, dir: Option<PathBuf>) -> Arc<JobRunner> {
        JobRunner::start(
            Arc::clone(live),
            &JobsConfig { max_jobs: 1, queue_depth: 4, job_dir: dir },
            Box::new(|| false),
        )
        .unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("reecc-jobs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const WAIT: Duration = Duration::from_secs(60);

    /// Tests arming the shared `job.*` failpoint sites must not overlap.
    static FP_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn header_and_records_round_trip() {
        let s = spec(OptimizerKind::MinRecc, 3);
        let mut bytes = encode_header(42, 0xfeed, &s).to_vec();
        let recs =
            [JobRecord { u: 0, v: 9, score: 1.25 }, JobRecord { u: 3, v: 4, score: f64::NAN }];
        for r in &recs {
            bytes.extend_from_slice(&encode_record(r));
        }
        let parsed = parse_job_file(&bytes).unwrap();
        assert_eq!(parsed.job_id, 42);
        assert_eq!(parsed.fingerprint, 0xfeed);
        assert_eq!(parsed.spec, s);
        assert_eq!(parsed.records.len(), 2);
        assert_eq!(parsed.records[0], recs[0]);
        assert_eq!(parsed.records[1].u, 3);
        assert!(parsed.records[1].score.is_nan());
        assert_eq!(parsed.torn_bytes, 0);
    }

    #[test]
    fn optimizer_kind_codes_and_names_round_trip() {
        for kind in [
            OptimizerKind::Simple,
            OptimizerKind::Far,
            OptimizerKind::Cen,
            OptimizerKind::Ch,
            OptimizerKind::MinRecc,
        ] {
            assert_eq!(OptimizerKind::from_code(kind.code()), Some(kind));
            assert_eq!(OptimizerKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(OptimizerKind::from_code(99), None);
        assert_eq!(OptimizerKind::parse("greedy"), None);
    }

    #[test]
    fn every_prefix_truncation_is_typed_or_tolerated() {
        let s = spec(OptimizerKind::Simple, 4);
        let mut bytes = encode_header(7, 0xabc, &s).to_vec();
        for i in 0..3usize {
            bytes.extend_from_slice(&encode_record(&JobRecord {
                u: i,
                v: i + 5,
                score: i as f64,
            }));
        }
        for len in 0..=bytes.len() {
            let prefix = &bytes[..len];
            match parse_job_file(prefix) {
                Err(JobFileError::Truncated { len: l }) => {
                    assert!(l < HEADER_LEN, "len {len}: typed only inside the header")
                }
                Ok(parsed) => {
                    let full = (len - HEADER_LEN) / RECORD_LEN;
                    assert_eq!(parsed.records.len(), full, "len {len}");
                    assert_eq!(parsed.torn_bytes, (len - HEADER_LEN) % RECORD_LEN, "len {len}");
                }
                Err(e) => panic!("len {len}: unexpected {e}"),
            }
        }
    }

    #[test]
    fn flipped_bytes_are_detected() {
        let s = spec(OptimizerKind::Far, 2);
        let mut bytes = encode_header(1, 2, &s).to_vec();
        bytes.extend_from_slice(&encode_record(&JobRecord { u: 2, v: 6, score: 0.5 }));
        for offset in [0usize, 5, 13, 30, 50, 80, HEADER_LEN + 1, HEADER_LEN + 20] {
            let mut copy = bytes.clone();
            copy[offset] ^= 0x40;
            let err = parse_job_file(&copy).unwrap_err();
            assert!(
                matches!(
                    err,
                    JobFileError::Corrupt { .. }
                        | JobFileError::BadMagic
                        | JobFileError::UnsupportedVersion(_)
                ),
                "offset {offset}: {err}"
            );
        }
        // A non-canonical record is corrupt even with a valid checksum.
        let mut copy = encode_header(1, 2, &s).to_vec();
        let mut rec = [0u8; RECORD_LEN];
        rec[..8].copy_from_slice(&9u64.to_le_bytes());
        rec[8..16].copy_from_slice(&4u64.to_le_bytes());
        rec[16..24].copy_from_slice(&1.0f64.to_bits().to_le_bytes());
        let sum = checksum(&rec[..RECORD_LEN - 8]);
        rec[24..32].copy_from_slice(&sum.to_le_bytes());
        copy.extend_from_slice(&rec);
        assert!(matches!(
            parse_job_file(&copy),
            Err(JobFileError::Corrupt { detail, .. }) if detail.contains("non-canonical")
        ));
    }

    #[test]
    fn writer_truncates_torn_tail_and_appends() {
        let dir = temp_dir("writer");
        let path = dir.join("job-3.reeccjob");
        let s = spec(OptimizerKind::Cen, 5);
        let mut w = CheckpointWriter::create(&path, 3, 0xdead, &s).unwrap();
        w.append(&JobRecord { u: 1, v: 2, score: 0.5 }).unwrap();
        w.append(&JobRecord { u: 0, v: 4, score: 0.25 }).unwrap();
        drop(w);
        // Simulate a crash mid-append: append half a record by hand.
        {
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xaa; RECORD_LEN / 2]).unwrap();
        }
        let (mut w, parsed) = CheckpointWriter::open_append(&path).unwrap();
        assert_eq!(parsed.records.len(), 2);
        assert_eq!(parsed.torn_bytes, RECORD_LEN / 2);
        assert_eq!(w.bytes(), (HEADER_LEN + 2 * RECORD_LEN) as u64);
        w.append(&JobRecord { u: 2, v: 3, score: 0.125 }).unwrap();
        drop(w);
        let bytes = std::fs::read(&path).unwrap();
        let parsed = parse_job_file(&bytes).unwrap();
        assert_eq!(parsed.records.len(), 3);
        assert_eq!(parsed.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_failpoint_fails_append_cleanly() {
        let _fp = FP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = temp_dir("fp");
        let path = dir.join("job-0.reeccjob");
        let s = spec(OptimizerKind::Simple, 2);
        let mut w = CheckpointWriter::create(&path, 0, 1, &s).unwrap();
        failpoint::configure("job.checkpoint", failpoint::Action::IoError, Some(1));
        let err = w.append(&JobRecord { u: 0, v: 1, score: 1.0 }).unwrap_err();
        assert!(matches!(err, JobFileError::Io(_)), "{err}");
        assert_eq!(w.bytes(), HEADER_LEN as u64, "failed append leaves no bytes behind");
        w.append(&JobRecord { u: 0, v: 1, score: 1.0 }).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn job_runs_to_completion_with_events() {
        let g = barabasi_albert(24, 2, 11);
        let live = live(&g);
        let runner = runner(&live, None);
        let id = runner.submit(spec(OptimizerKind::Simple, 3)).unwrap();
        let report = runner.wait(id, WAIT).unwrap();
        assert_eq!(report.state, "completed", "{}", report.detail);
        assert_eq!(report.plan.len(), 3);
        assert_eq!(report.resumed, 0);
        assert!(!report.epoch_swapped);
        assert!(report.wall_micros > 0);
        let (events, terminal) = runner.events(id, 0, false, WAIT).unwrap();
        assert!(terminal);
        assert_eq!(events.len(), 3);
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.iteration, i);
            assert!(ev.score.is_finite());
            assert!(!ev.replayed);
            assert_eq!((ev.u, ev.v), (report.plan[i].0, report.plan[i].1));
        }
        let stats = runner.stats();
        assert_eq!((stats.submitted, stats.completed, stats.failed), (1, 1, 0));
    }

    #[test]
    fn submit_rejects_invalid_specs_and_full_queue() {
        let g = cycle(12);
        let lv = live(&g);
        let runner = runner(&lv, None);
        let mut bad = spec(OptimizerKind::Simple, 2);
        bad.source = 99;
        assert!(matches!(runner.submit(bad), Err(JobSubmitError::Invalid(_))));
        let mut bad = spec(OptimizerKind::Simple, 2);
        bad.k = 0;
        assert!(matches!(runner.submit(bad), Err(JobSubmitError::Invalid(_))));
        let mut bad = spec(OptimizerKind::Far, 2);
        bad.eps = -1.0;
        assert!(matches!(runner.submit(bad), Err(JobSubmitError::Invalid(_))));
        assert!(JobRunner::start(
            Arc::clone(&lv),
            &JobsConfig { max_jobs: 0, queue_depth: 1, job_dir: None },
            Box::new(|| false),
        )
        .is_err());
    }

    #[test]
    fn oversized_budget_fails_the_job_not_the_runner() {
        let g = cycle(8);
        let live = live(&g);
        let runner = runner(&live, None);
        // k exceeding the REMD candidate set is an optimizer error.
        let id = runner.submit(spec(OptimizerKind::Far, 100)).unwrap();
        let report = runner.wait(id, WAIT).unwrap();
        assert_eq!(report.state, "failed");
        assert!(report.detail.contains("budget"), "{}", report.detail);
        // The runner survives and takes the next job.
        let id = runner.submit(spec(OptimizerKind::Far, 2)).unwrap();
        assert_eq!(runner.wait(id, WAIT).unwrap().state, "completed");
    }

    #[test]
    fn cancel_stops_the_job_cleanly() {
        let _fp = FP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let g = barabasi_albert(40, 2, 3);
        let live = live(&g);
        let runner = runner(&live, None);
        // Slow each iteration down so cancel lands mid-run.
        failpoint::configure("job.iterate", failpoint::Action::Delay(40), None);
        let id = runner.submit(spec(OptimizerKind::Simple, 8)).unwrap();
        // Wait for the first event so the run is demonstrably underway.
        let (events, _) = runner.events(id, 0, true, WAIT).unwrap();
        assert!(!events.is_empty());
        runner.cancel(id).unwrap();
        let report = runner.wait(id, WAIT).unwrap();
        failpoint::clear("job.iterate");
        assert_eq!(report.state, "cancelled", "{}", report.detail);
        assert!(report.plan.len() < 8, "cancelled before the full budget");
        assert_eq!(runner.stats().cancelled, 1);
    }

    #[test]
    fn panicking_job_is_contained() {
        let _fp = FP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let g = cycle(10);
        let live = live(&g);
        let runner = runner(&live, None);
        failpoint::configure("job.iterate", failpoint::Action::Panic, Some(1));
        let id = runner.submit(spec(OptimizerKind::Simple, 2)).unwrap();
        let report = runner.wait(id, WAIT).unwrap();
        assert_eq!(report.state, "failed");
        assert!(report.detail.contains("panicked"), "{}", report.detail);
        assert_eq!(runner.stats().failed, 1);
        // The runner thread survived the panic.
        let id = runner.submit(spec(OptimizerKind::Simple, 2)).unwrap();
        assert_eq!(runner.wait(id, WAIT).unwrap().state, "completed");
    }

    #[test]
    fn checkpointed_job_resumes_bitwise_after_interruption() {
        let g = barabasi_albert(26, 2, 7);
        let lv = live(&g);
        let job_spec = spec(OptimizerKind::MinRecc, 3);
        // Uninterrupted reference run.
        let reference = {
            let runner = runner(&lv, None);
            let id = runner.submit(job_spec).unwrap();
            let report = runner.wait(id, WAIT).unwrap();
            assert_eq!(report.state, "completed", "{}", report.detail);
            report.plan
        };
        // Handcraft the state a `kill -9` after the first accepted edge
        // leaves behind: header + one durable record + half of a second
        // record (crash mid-append).
        let dir = temp_dir("resume");
        let path = checkpoint_path(&dir, 0);
        let fp = lv.view().fingerprint;
        let mut w = CheckpointWriter::create(&path, 0, fp, &job_spec).unwrap();
        let (u0, v0, s0) = reference[0];
        w.append(&JobRecord { u: u0, v: v0, score: s0 }).unwrap();
        drop(w);
        {
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x5a; RECORD_LEN / 2]).unwrap();
        }
        // Restart: the torn tail is truncated, the 1-edge prefix replays,
        // and the finished plan matches the uninterrupted run bitwise.
        let runner = runner(&lv, Some(dir.clone()));
        assert_eq!(runner.resumed_on_start(), 1);
        let report = runner.wait(0, WAIT).unwrap();
        assert_eq!(report.state, "completed", "{}", report.detail);
        assert_eq!(report.resumed, 1);
        assert_eq!(report.plan.len(), reference.len());
        for (got, want) in report.plan.iter().zip(&reference) {
            assert_eq!((got.0, got.1), (want.0, want.1));
            assert_eq!(got.2.to_bits(), want.2.to_bits(), "scores must match bitwise");
        }
        let (events, terminal) = runner.events(0, 0, false, WAIT).unwrap();
        assert!(terminal);
        assert_eq!(events.len(), 3);
        assert!(events[0].replayed && !events[1].replayed);
        // Completed: the checkpoint is gone.
        assert!(!checkpoint_path(&dir, 0).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_fails_resume_cleanly() {
        let _fp = FP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = temp_dir("fpmm");
        let g = cycle(10);
        let lv = live(&g);
        {
            let runner = runner(&lv, Some(dir.clone()));
            failpoint::configure("job.iterate", failpoint::Action::IoError, Some(1));
            let id = runner.submit(spec(OptimizerKind::Far, 2)).unwrap();
            let report = runner.wait(id, WAIT).unwrap();
            failpoint::clear("job.iterate");
            assert_eq!(report.state, "failed");
        }
        // Restart against a different graph.
        let other = live(&barabasi_albert(20, 2, 9));
        let runner = runner(&other, Some(dir.clone()));
        assert_eq!(runner.resumed_on_start(), 0);
        let report = runner.status(0).unwrap();
        assert_eq!(report.state, "failed");
        assert!(report.detail.contains("fingerprint"), "{}", report.detail);
        assert!(checkpoint_path(&dir, 0).exists(), "evidence kept");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epoch_swap_during_job_is_reported() {
        let _fp = FP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let g = barabasi_albert(30, 2, 5);
        // A tiny error budget: the first mutation kicks a re-sketch.
        let engine = Arc::new(
            QueryEngine::build(
                &g,
                &SketchParams { epsilon: 0.4, seed: 5, ..Default::default() },
            )
            .unwrap(),
        );
        let lv = LiveEngine::ephemeral(engine, Some(1e-6));
        let runner = runner(&lv, None);
        // Slow iterations so the swap lands while the job is mid-run.
        failpoint::configure("job.iterate", failpoint::Action::Delay(100), None);
        let id = runner.submit(spec(OptimizerKind::Simple, 4)).unwrap();
        let (events, _) = runner.events(id, 0, true, WAIT).unwrap();
        assert!(!events.is_empty());
        let receipt = lv.apply_mutation(crate::wal::WalOp::AddEdge, 0, 29).unwrap();
        assert!(receipt.resketch_kicked);
        lv.join_resketch();
        assert_eq!(lv.epoch(), 1);
        let report = runner.wait(id, WAIT).unwrap();
        failpoint::clear("job.iterate");
        assert_eq!(report.state, "completed", "{}", report.detail);
        assert!(report.epoch_swapped, "swap between submit and finish must be reported");
        assert_eq!(report.plan.len(), 4, "pinned view unaffected by the swap");
    }
}
