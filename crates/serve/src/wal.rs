//! Crash-safe write-ahead edge log for live mutable serving.
//!
//! Every accepted `add-edge` / `remove-edge` mutation is appended (and
//! fsynced) here *before* the client sees an ack, so a `kill -9` at any
//! point can be recovered by replaying the log on top of the epoch's
//! base snapshot. The format is deliberately dumb — fixed-size records,
//! per-record FNV-1a checksums, no compression — because the recovery
//! path must be auditable byte-for-byte.
//!
//! # On-disk layout (per epoch, inside `--wal-dir`)
//!
//! ```text
//! CURRENT            decimal epoch number + '\n' (atomic rename flip)
//! epoch-N.graph      base edge list (text, `u v` per line)
//! epoch-N.sketch     base sketch snapshot (crate::snapshot v1 format)
//! wal-N.log          this module: header + mutation records
//! ```
//!
//! # WAL file format (version 1, all integers little-endian)
//!
//! ```text
//! header (28 bytes): magic "REECCWAL" | version u32 | epoch u64 | base-graph fingerprint u64
//! record (33 bytes): op u8 (1 = add, 2 = remove) | u u64 | v u64 | seq u64 | fnv1a u64
//! ```
//!
//! The record checksum is FNV-1a over the first 25 bytes. `seq` is the
//! mutation's position in the *engine's* total mutation order (monotone
//! across epochs); replay uses it to re-derive the deterministic
//! projection-column seed, so a replayed add is bitwise identical to the
//! originally served one.
//!
//! # Torn-tail contract
//!
//! Mirrors the snapshot fuzz contract from DESIGN.md §7: a trailing
//! partial record (crash mid-append) is *tolerated* — parsing stops at
//! the last complete record and reopening for append truncates the torn
//! bytes. A complete record with a bad checksum, or a truncated header,
//! is a **typed error** ([`WalError::Corrupt`] / [`WalError::Truncated`]),
//! never a panic and never silently-wrong data.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use reecc_graph::fingerprint::Fnv1a;
use reecc_graph::Edge;

use crate::failpoint;
use crate::snapshot::atomic_replace;

/// First 8 bytes of every WAL file.
pub const MAGIC: [u8; 8] = *b"REECCWAL";
/// Format version written by this build.
pub const FORMAT_VERSION: u32 = 1;
/// Header length in bytes: magic + version + epoch + fingerprint.
pub const HEADER_LEN: usize = 8 + 4 + 8 + 8;
/// Record length in bytes: op + u + v + seq + checksum.
pub const RECORD_LEN: usize = 1 + 8 + 8 + 8 + 8;

const OP_ADD: u8 = 1;
const OP_REMOVE: u8 = 2;

/// The kind of mutation a WAL record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// Insert the edge `(u, v)`.
    AddEdge,
    /// Delete the edge `(u, v)`.
    RemoveEdge,
}

/// One durable mutation: an edge op plus its global sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecord {
    /// What to do with the edge.
    pub op: WalOp,
    /// Smaller endpoint.
    pub u: usize,
    /// Larger endpoint.
    pub v: usize,
    /// Position in the engine's total mutation order; seeds the
    /// projection column for adds, so replay is deterministic.
    pub seq: u64,
}

impl WalRecord {
    /// The edge this record mutates.
    pub fn edge(&self) -> Edge {
        Edge::new(self.u, self.v)
    }
}

/// Typed WAL failures. Recovery code matches on these; none of the
/// parsing paths panic on any input byte string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// An underlying filesystem operation failed (or a `wal.append` /
    /// `wal.replay` failpoint injected one).
    Io(String),
    /// The file does not start with the `REECCWAL` magic.
    BadMagic,
    /// The file declares a format version this build cannot read.
    UnsupportedVersion(u32),
    /// The file ends before a complete header — distinct from a torn
    /// record tail, which is tolerated.
    Truncated {
        /// File length in bytes.
        len: usize,
    },
    /// A complete record failed validation (checksum mismatch, unknown
    /// op byte, endpoint order).
    Corrupt {
        /// Byte offset of the offending record.
        offset: usize,
        /// What failed.
        detail: String,
    },
    /// The header's epoch does not match the epoch named by `CURRENT`.
    EpochMismatch {
        /// Epoch the caller expected.
        expected: u64,
        /// Epoch recorded in the WAL header.
        found: u64,
    },
    /// The header's base-graph fingerprint does not match the loaded
    /// epoch snapshot.
    FingerprintMismatch {
        /// Fingerprint the caller expected.
        expected: u64,
        /// Fingerprint recorded in the WAL header.
        found: u64,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(msg) => write!(f, "wal i/o error: {msg}"),
            WalError::BadMagic => write!(f, "not a reecc WAL file (bad magic)"),
            WalError::UnsupportedVersion(v) => {
                write!(f, "unsupported WAL format version {v} (this build reads {FORMAT_VERSION})")
            }
            WalError::Truncated { len } => {
                write!(f, "WAL truncated inside header ({len} bytes, need {HEADER_LEN})")
            }
            WalError::Corrupt { offset, detail } => {
                write!(f, "corrupt WAL record at byte {offset}: {detail}")
            }
            WalError::EpochMismatch { expected, found } => {
                write!(f, "WAL is for epoch {found}, expected epoch {expected}")
            }
            WalError::FingerprintMismatch { expected, found } => write!(
                f,
                "WAL base-graph fingerprint {found:#018x} does not match snapshot {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for WalError {}

/// Path of the epoch pointer file inside `dir`.
pub fn current_path(dir: &Path) -> PathBuf {
    dir.join("CURRENT")
}

/// Path of epoch `n`'s base edge list inside `dir`.
pub fn graph_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(format!("epoch-{n}.graph"))
}

/// Path of epoch `n`'s base sketch snapshot inside `dir`.
pub fn sketch_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(format!("epoch-{n}.sketch"))
}

/// Path of epoch `n`'s write-ahead log inside `dir`.
pub fn wal_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(format!("wal-{n}.log"))
}

/// Read the `CURRENT` pointer: `Ok(None)` when the file does not exist
/// (fresh directory), `Ok(Some(epoch))` otherwise.
///
/// # Errors
///
/// [`WalError::Io`] on read failure, [`WalError::Corrupt`] when the
/// contents are not a decimal epoch number.
pub fn read_current(dir: &Path) -> Result<Option<u64>, WalError> {
    let path = current_path(dir);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(WalError::Io(format!("cannot read {}: {e}", path.display()))),
    };
    text.trim().parse::<u64>().map(Some).map_err(|_| WalError::Corrupt {
        offset: 0,
        detail: format!("CURRENT does not contain an epoch number: {:?}", text.trim()),
    })
}

/// Atomically flip the `CURRENT` pointer to epoch `n` (temp + fsync +
/// rename + parent-dir fsync). This is the *commit point* of an epoch
/// swap: a crash before it recovers the old epoch, after it the new one.
///
/// # Errors
///
/// [`WalError::Io`] with the underlying message.
pub fn write_current(dir: &Path, n: u64) -> Result<(), WalError> {
    atomic_replace(&current_path(dir), format!("{n}\n").as_bytes()).map_err(WalError::Io)
}

fn encode_header(epoch: u64, fingerprint: u64) -> [u8; HEADER_LEN] {
    let mut buf = [0u8; HEADER_LEN];
    buf[..8].copy_from_slice(&MAGIC);
    buf[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf[12..20].copy_from_slice(&epoch.to_le_bytes());
    buf[20..28].copy_from_slice(&fingerprint.to_le_bytes());
    buf
}

/// Serialize one record, checksum included.
pub fn encode_record(rec: &WalRecord) -> [u8; RECORD_LEN] {
    let mut buf = [0u8; RECORD_LEN];
    buf[0] = match rec.op {
        WalOp::AddEdge => OP_ADD,
        WalOp::RemoveEdge => OP_REMOVE,
    };
    buf[1..9].copy_from_slice(&(rec.u as u64).to_le_bytes());
    buf[9..17].copy_from_slice(&(rec.v as u64).to_le_bytes());
    buf[17..25].copy_from_slice(&rec.seq.to_le_bytes());
    let mut h = Fnv1a::new();
    h.update(&buf[..25]);
    buf[25..33].copy_from_slice(&h.finish().to_le_bytes());
    buf
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(b)
}

/// Decode one complete record starting at `offset` within the file
/// (`bytes` is exactly `RECORD_LEN` long; `offset` is for error text).
///
/// # Errors
///
/// [`WalError::Corrupt`] on checksum mismatch, unknown op byte, or
/// non-canonical endpoints; never panics.
pub fn decode_record(bytes: &[u8], offset: usize) -> Result<WalRecord, WalError> {
    debug_assert_eq!(bytes.len(), RECORD_LEN);
    let mut h = Fnv1a::new();
    h.update(&bytes[..25]);
    let want = h.finish();
    let got = u64_at(bytes, 25);
    if want != got {
        return Err(WalError::Corrupt {
            offset,
            detail: format!("checksum mismatch (stored {got:#018x}, computed {want:#018x})"),
        });
    }
    let op = match bytes[0] {
        OP_ADD => WalOp::AddEdge,
        OP_REMOVE => WalOp::RemoveEdge,
        other => {
            return Err(WalError::Corrupt {
                offset,
                detail: format!("unknown op byte {other}"),
            })
        }
    };
    let u = u64_at(bytes, 1);
    let v = u64_at(bytes, 9);
    if u >= v {
        return Err(WalError::Corrupt {
            offset,
            detail: format!("endpoints ({u}, {v}) are not in canonical order"),
        });
    }
    Ok(WalRecord { op, u: u as usize, v: v as usize, seq: u64_at(bytes, 17) })
}

/// A parsed WAL file: validated header plus every complete record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalContents {
    /// Epoch recorded in the header.
    pub epoch: u64,
    /// Base-graph fingerprint recorded in the header.
    pub fingerprint: u64,
    /// Every complete, checksum-valid record, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes consumed (header + complete records); anything past this is
    /// a torn tail from a crash mid-append.
    pub consumed: usize,
    /// Torn-tail bytes past the last complete record (0 for a clean log).
    pub torn_bytes: usize,
}

/// Parse an in-memory WAL image. Tolerates a torn trailing record
/// (reported via `torn_bytes`), rejects everything else with a typed
/// error.
///
/// # Errors
///
/// [`WalError::Truncated`] when the header itself is incomplete,
/// [`WalError::BadMagic`] / [`WalError::UnsupportedVersion`] on header
/// validation, [`WalError::Corrupt`] when a *complete* record fails its
/// checksum or decodes to nonsense.
pub fn parse_wal(bytes: &[u8]) -> Result<WalContents, WalError> {
    if bytes.len() < HEADER_LEN {
        return Err(WalError::Truncated { len: bytes.len() });
    }
    if bytes[..8] != MAGIC {
        return Err(WalError::BadMagic);
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != FORMAT_VERSION {
        return Err(WalError::UnsupportedVersion(version));
    }
    let epoch = u64_at(bytes, 12);
    let fingerprint = u64_at(bytes, 20);
    let mut records = Vec::new();
    let mut offset = HEADER_LEN;
    while offset + RECORD_LEN <= bytes.len() {
        records.push(decode_record(&bytes[offset..offset + RECORD_LEN], offset)?);
        offset += RECORD_LEN;
    }
    Ok(WalContents {
        epoch,
        fingerprint,
        records,
        consumed: offset,
        torn_bytes: bytes.len() - offset,
    })
}

/// Read and parse `path`, validating the header against the epoch and
/// base fingerprint the caller recovered from `CURRENT` + the snapshot.
///
/// # Errors
///
/// Everything [`parse_wal`] rejects, plus [`WalError::EpochMismatch`] /
/// [`WalError::FingerprintMismatch`] on header disagreement and
/// [`WalError::Io`] on read failure.
pub fn read_wal(
    path: &Path,
    expected_epoch: u64,
    expected_fp: u64,
) -> Result<WalContents, WalError> {
    let bytes = std::fs::read(path)
        .map_err(|e| WalError::Io(format!("cannot read {}: {e}", path.display())))?;
    let contents = parse_wal(&bytes)?;
    if contents.epoch != expected_epoch {
        return Err(WalError::EpochMismatch {
            expected: expected_epoch,
            found: contents.epoch,
        });
    }
    if contents.fingerprint != expected_fp {
        return Err(WalError::FingerprintMismatch {
            expected: expected_fp,
            found: contents.fingerprint,
        });
    }
    Ok(contents)
}

/// Append-only writer for one epoch's WAL file.
///
/// [`WalWriter::append`] is the durability point of the mutation path:
/// it returns only after the record bytes are flushed *and* fsynced, so
/// an acked mutation survives `kill -9`. On any append failure the file
/// is rolled back to its pre-append length — a failed append never
/// leaves a half-record for the next reader to trip over (the torn-tail
/// tolerance exists for power loss, not for routine errors).
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    epoch: u64,
    bytes: u64,
}

impl WalWriter {
    /// Create a fresh WAL at `path` for `epoch`, header fsynced before
    /// returning.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`].
    pub fn create(path: &Path, epoch: u64, fingerprint: u64) -> Result<WalWriter, WalError> {
        let io = |what: &str, e: std::io::Error| {
            WalError::Io(format!("{what} {}: {e}", path.display()))
        };
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io("cannot create", e))?;
        let header = encode_header(epoch, fingerprint);
        file.write_all(&header).map_err(|e| io("cannot write header to", e))?;
        file.sync_data().map_err(|e| io("cannot sync", e))?;
        crate::snapshot::sync_parent_dir(path);
        Ok(WalWriter { file, path: path.to_path_buf(), epoch, bytes: HEADER_LEN as u64 })
    }

    /// Reopen an existing WAL for appending: parse + validate the whole
    /// file, truncate any torn tail, seek to the end, and return the
    /// writer together with the records already on disk.
    ///
    /// # Errors
    ///
    /// Everything [`read_wal`] rejects, plus [`WalError::Io`].
    pub fn open_append(
        path: &Path,
        expected_epoch: u64,
        expected_fp: u64,
    ) -> Result<(WalWriter, Vec<WalRecord>), WalError> {
        let io = |what: &str, e: std::io::Error| {
            WalError::Io(format!("{what} {}: {e}", path.display()))
        };
        let contents = read_wal(path, expected_epoch, expected_fp)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io("cannot open", e))?;
        if contents.torn_bytes > 0 {
            // Crash mid-append: drop the torn tail so our next append
            // starts on a record boundary.
            file.set_len(contents.consumed as u64).map_err(|e| io("cannot truncate", e))?;
            file.sync_data().map_err(|e| io("cannot sync", e))?;
        }
        file.seek(SeekFrom::Start(contents.consumed as u64))
            .map_err(|e| io("cannot seek in", e))?;
        let writer = WalWriter {
            file,
            path: path.to_path_buf(),
            epoch: expected_epoch,
            bytes: contents.consumed as u64,
        };
        Ok((writer, contents.records))
    }

    /// Epoch this writer's file belongs to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current durable file length in bytes (the `wal_bytes` stat).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Durably append one record: write + flush + `fdatasync` before
    /// returning, so the caller may ack the mutation. The `wal.append`
    /// failpoint fires first — an injected i/o error surfaces exactly
    /// like a full disk, before any bytes land.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`]; the file is rolled back to its pre-append
    /// length so the log never holds a known-bad suffix.
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64, WalError> {
        failpoint::hit("wal.append").map_err(WalError::Io)?;
        let io = |what: &str, e: std::io::Error| {
            WalError::Io(format!("{what} {}: {e}", self.path.display()))
        };
        let buf = encode_record(rec);
        let result = self
            .file
            .write_all(&buf)
            .and_then(|()| self.file.flush())
            .and_then(|()| self.file.sync_data());
        if let Err(e) = result {
            // Roll back a partial write; best-effort — if even set_len
            // fails the torn-tail tolerance covers the remainder.
            let _ = self.file.set_len(self.bytes);
            let _ = self.file.seek(SeekFrom::Start(self.bytes));
            return Err(io("cannot append to", e));
        }
        self.bytes += RECORD_LEN as u64;
        Ok(self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("reecc-wal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord { op: WalOp::AddEdge, u: 0, v: 7, seq: 0 },
            WalRecord { op: WalOp::RemoveEdge, u: 2, v: 3, seq: 1 },
            WalRecord { op: WalOp::AddEdge, u: 1, v: 9, seq: 2 },
            WalRecord { op: WalOp::AddEdge, u: 4, v: 5, seq: 3 },
            WalRecord { op: WalOp::RemoveEdge, u: 0, v: 7, seq: 4 },
        ]
    }

    fn full_image(epoch: u64, fp: u64, recs: &[WalRecord]) -> Vec<u8> {
        let mut bytes = encode_header(epoch, fp).to_vec();
        for r in recs {
            bytes.extend_from_slice(&encode_record(r));
        }
        bytes
    }

    #[test]
    fn record_encode_decode_round_trips() {
        for rec in sample_records() {
            let buf = encode_record(&rec);
            assert_eq!(decode_record(&buf, 0).unwrap(), rec);
        }
    }

    #[test]
    fn writer_round_trips_through_open_append() {
        let dir = temp_dir("rt");
        let path = wal_path(&dir, 3);
        let recs = sample_records();
        let mut w = WalWriter::create(&path, 3, 0xfeed).unwrap();
        for r in &recs[..3] {
            w.append(r).unwrap();
        }
        drop(w);
        let (mut w, on_disk) = WalWriter::open_append(&path, 3, 0xfeed).unwrap();
        assert_eq!(on_disk, recs[..3].to_vec());
        for r in &recs[3..] {
            w.append(r).unwrap();
        }
        assert_eq!(w.bytes(), (HEADER_LEN + 5 * RECORD_LEN) as u64);
        drop(w);
        let contents = read_wal(&path, 3, 0xfeed).unwrap();
        assert_eq!(contents.records, recs);
        assert_eq!(contents.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_prefix_truncation_is_typed_or_tolerated() {
        // The snapshot fuzz contract, ported to the WAL: truncate the
        // image at EVERY byte boundary. Below a full header => typed
        // Truncated error. At or past the header => Ok, with exactly the
        // complete records visible and the remainder reported torn.
        let recs = sample_records();
        let image = full_image(9, 0xabcd, &recs);
        for cut in 0..=image.len() {
            let result = parse_wal(&image[..cut]);
            if cut < HEADER_LEN {
                assert_eq!(
                    result,
                    Err(WalError::Truncated { len: cut }),
                    "cut at {cut} must be a typed header truncation"
                );
            } else {
                let contents = result.unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
                let whole = (cut - HEADER_LEN) / RECORD_LEN;
                assert_eq!(contents.records, recs[..whole].to_vec(), "cut at {cut}");
                assert_eq!(contents.torn_bytes, cut - HEADER_LEN - whole * RECORD_LEN);
            }
        }
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let dir = temp_dir("torn");
        let path = wal_path(&dir, 0);
        let recs = sample_records();
        let mut image = full_image(0, 1, &recs[..2]);
        image.extend_from_slice(&encode_record(&recs[2])[..RECORD_LEN / 2]); // torn append
        std::fs::write(&path, &image).unwrap();
        let (mut w, on_disk) = WalWriter::open_append(&path, 0, 1).unwrap();
        assert_eq!(on_disk, recs[..2].to_vec());
        assert_eq!(w.bytes(), (HEADER_LEN + 2 * RECORD_LEN) as u64);
        w.append(&recs[3]).unwrap();
        drop(w);
        let contents = read_wal(&path, 0, 1).unwrap();
        assert_eq!(contents.records, vec![recs[0], recs[1], recs[3]]);
        assert_eq!(contents.torn_bytes, 0, "reopen truncated the torn tail");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_record_is_a_typed_error_never_panic() {
        let recs = sample_records();
        let clean = full_image(1, 2, &recs);
        // Flip one byte in each record in turn; every complete-record
        // corruption must surface as Corrupt at that record's offset.
        for k in 0..recs.len() {
            let mut image = clean.clone();
            let offset = HEADER_LEN + k * RECORD_LEN;
            image[offset + 5] ^= 0x40;
            match parse_wal(&image) {
                Err(WalError::Corrupt { offset: at, .. }) => assert_eq!(at, offset),
                other => panic!("record {k}: expected Corrupt, got {other:?}"),
            }
        }
        // Bad magic and bad version are their own variants.
        let mut image = clean.clone();
        image[0] = b'X';
        assert_eq!(parse_wal(&image), Err(WalError::BadMagic));
        let mut image = clean;
        image[8] = 99;
        assert_eq!(parse_wal(&image), Err(WalError::UnsupportedVersion(99)));
    }

    #[test]
    fn header_mismatches_are_typed() {
        let dir = temp_dir("hdr");
        let path = wal_path(&dir, 5);
        WalWriter::create(&path, 5, 777).unwrap();
        assert_eq!(
            read_wal(&path, 6, 777),
            Err(WalError::EpochMismatch { expected: 6, found: 5 })
        );
        assert_eq!(
            read_wal(&path, 5, 778),
            Err(WalError::FingerprintMismatch { expected: 778, found: 777 })
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_append_rolls_back_and_recovers() {
        let dir = temp_dir("fp");
        let path = wal_path(&dir, 0);
        let mut w = WalWriter::create(&path, 0, 0).unwrap();
        let recs = sample_records();
        w.append(&recs[0]).unwrap();
        crate::failpoint::configure("wal.append", crate::failpoint::Action::IoError, Some(1));
        let err = w.append(&recs[1]).unwrap_err();
        assert!(matches!(err, WalError::Io(_)), "{err:?}");
        assert_eq!(w.bytes(), (HEADER_LEN + RECORD_LEN) as u64, "length unchanged on failure");
        // The very next append succeeds and the log stays clean.
        w.append(&recs[2]).unwrap();
        drop(w);
        let contents = read_wal(&path, 0, 0).unwrap();
        assert_eq!(contents.records, vec![recs[0], recs[2]]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn current_pointer_round_trips_and_rejects_garbage() {
        let dir = temp_dir("cur");
        assert_eq!(read_current(&dir), Ok(None), "fresh dir has no CURRENT");
        write_current(&dir, 0).unwrap();
        assert_eq!(read_current(&dir), Ok(Some(0)));
        write_current(&dir, 12).unwrap();
        assert_eq!(read_current(&dir), Ok(Some(12)));
        std::fs::write(current_path(&dir), b"not-an-epoch\n").unwrap();
        assert!(matches!(read_current(&dir), Err(WalError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }
}
