//! A hashed timer wheel for connection deadlines.
//!
//! The event-loop transport tracks two deadlines per connection (idle
//! and write-stall). A heap of deadlines would pay `O(log n)` per
//! reschedule — and deadlines reschedule on *every* byte of activity. A
//! hashed wheel makes `schedule` an `O(1)` push and lets the reactor
//! harvest everything due in a tick with one cursor sweep.
//!
//! The wheel is deliberately *lazy*: entries are never removed or
//! updated in place. When an entry fires, the reactor re-checks the
//! connection's real deadline and either acts or reschedules. A token
//! whose connection is gone just falls on the floor. This keeps the hot
//! path allocation-free (slot `Vec`s are reused) and makes the wheel
//! impossible to desynchronize from the connection table.
//!
//! Deadlines land in the slot for their tick; entries scheduled more
//! than one lap out are re-queued as the cursor passes over them, so
//! arbitrarily long deadlines are correct, just touched once per lap.

use std::time::{Duration, Instant};

/// A fixed-slot hashed timer wheel over `u64` tokens.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    /// Wheel granularity; deadlines are rounded up to the next tick.
    tick: Duration,
    /// The wheel's epoch; tick indices count from here.
    start: Instant,
    /// The next tick index the cursor will sweep.
    cursor: u64,
    len: usize,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    token: u64,
    due_tick: u64,
}

impl TimerWheel {
    /// A wheel with `slots` buckets of `tick` granularity (both clamped
    /// to sane minimums). One lap spans `slots × tick`.
    pub fn new(tick: Duration, slots: usize) -> TimerWheel {
        let slots = slots.max(2);
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick: tick.max(Duration::from_millis(1)),
            start: Instant::now(),
            cursor: 0,
            len: 0,
        }
    }

    /// Entries currently queued (fired and lazily dropped ones excluded).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.start);
        // Round up: a deadline inside tick t must not fire before the
        // sweep that covers t's end.
        elapsed.as_micros().div_ceil(self.tick.as_micros().max(1)) as u64
    }

    /// Queue `token` to fire at (or one tick after) `deadline`.
    ///
    /// Never fires early; may fire one tick late. Duplicate schedules
    /// for one token are fine — the reactor validates on fire.
    pub fn schedule(&mut self, token: u64, deadline: Instant) {
        // Due ticks at or behind the cursor would never be swept again;
        // clamp into the cursor's next sweep.
        let due_tick = self.tick_of(deadline).max(self.cursor);
        let slot = (due_tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { token, due_tick });
        self.len += 1;
    }

    /// Sweep every tick up to `now`, appending due tokens to `out` (in
    /// tick order; order within a tick is insertion order).
    pub fn collect_due(&mut self, now: Instant, out: &mut Vec<u64>) {
        let now_tick = self.tick_of(now);
        // Bound the sweep to one lap: beyond that every slot has been
        // visited once and older entries are already harvested.
        let slots = self.slots.len() as u64;
        let first = self.cursor;
        let last = now_tick.min(first.saturating_add(slots - 1));
        for tick in first..=last {
            let slot = (tick % slots) as usize;
            let bucket = &mut self.slots[slot];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].due_tick <= now_tick {
                    out.push(bucket.swap_remove(i).token);
                    self.len -= 1;
                } else {
                    // A future lap's entry: leave it in place (it lives
                    // in the right slot already).
                    i += 1;
                }
            }
        }
        self.cursor = now_tick + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn due(wheel: &mut TimerWheel, now: Instant) -> Vec<u64> {
        let mut out = Vec::new();
        wheel.collect_due(now, &mut out);
        out
    }

    #[test]
    fn fires_at_or_after_the_deadline_never_before() {
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8);
        let t0 = Instant::now();
        wheel.schedule(7, t0 + Duration::from_millis(35));
        assert!(due(&mut wheel, t0 + Duration::from_millis(20)).is_empty());
        assert_eq!(due(&mut wheel, t0 + Duration::from_millis(60)), vec![7]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn entries_beyond_one_lap_survive_the_sweep() {
        // Lap = 4 × 10ms = 40ms; a 95ms deadline wraps twice.
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 4);
        let t0 = Instant::now();
        wheel.schedule(1, t0 + Duration::from_millis(95));
        assert!(due(&mut wheel, t0 + Duration::from_millis(40)).is_empty());
        assert!(due(&mut wheel, t0 + Duration::from_millis(80)).is_empty());
        assert_eq!(due(&mut wheel, t0 + Duration::from_millis(120)), vec![1]);
    }

    #[test]
    fn a_large_gap_between_sweeps_harvests_everything() {
        let mut wheel = TimerWheel::new(Duration::from_millis(5), 16);
        let t0 = Instant::now();
        for token in 0..50u64 {
            wheel.schedule(token, t0 + Duration::from_millis(token));
        }
        assert_eq!(wheel.len(), 50);
        // One sweep far in the future (many laps) must still find all 50.
        let mut fired = due(&mut wheel, t0 + Duration::from_secs(2));
        fired.sort_unstable();
        assert_eq!(fired, (0..50).collect::<Vec<_>>());
        assert!(wheel.is_empty());
    }

    #[test]
    fn past_deadlines_fire_on_the_next_sweep() {
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8);
        let t0 = Instant::now();
        let _ = due(&mut wheel, t0 + Duration::from_millis(100)); // advance cursor
        wheel.schedule(3, t0); // already long past
        assert_eq!(due(&mut wheel, t0 + Duration::from_millis(110)), vec![3]);
    }

    #[test]
    fn duplicate_tokens_fire_once_per_schedule() {
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8);
        let t0 = Instant::now();
        wheel.schedule(9, t0 + Duration::from_millis(10));
        wheel.schedule(9, t0 + Duration::from_millis(20));
        let fired = due(&mut wheel, t0 + Duration::from_millis(50));
        assert_eq!(fired, vec![9, 9], "lazy wheels keep duplicates; reactors validate");
    }
}
