//! Thin std-only OS shim for the event-loop transport.
//!
//! The workspace is offline, so there is no `libc` crate; the reactor
//! ([`crate::server`]) needs exactly three things the standard library
//! does not expose, and this module declares them directly against the
//! C runtime that `std` already links:
//!
//! * [`poll_fds`] — `poll(2)` over raw fds harvested with
//!   `std::os::fd::AsRawFd`, the readiness multiplexer the reactor is
//!   built on;
//! * [`term_flag`] — a `signal(2)`-installed SIGTERM/SIGINT handler that
//!   flips one process-global atomic, so `reecc serve --addr` can turn a
//!   termination signal into a graceful drain instead of an abrupt exit;
//! * [`raise_nofile_limit`] — `setrlimit(2)` for `RLIMIT_NOFILE`, used by
//!   the connection-storm tests to hold >1k sockets in one process.
//!
//! Everything is best-effort on non-Unix targets: [`poll_fds`] reports
//! `Unsupported` (the TCP event loop needs a Unix-ish platform; pipe mode
//! is unaffected) and the other two quietly do nothing.

use std::io;
use std::sync::atomic::AtomicBool;
use std::time::Duration;

/// Readiness: fd has data to read (or a pending accept).
pub const POLLIN: i16 = 0x001;
/// Readiness: fd can accept writes without blocking.
pub const POLLOUT: i16 = 0x004;
/// Condition: fd error (always reported, never requested).
pub const POLLERR: i16 = 0x008;
/// Condition: peer hung up (always reported, never requested).
pub const POLLHUP: i16 = 0x010;
/// Condition: fd not open (always reported, never requested).
pub const POLLNVAL: i16 = 0x020;

/// One `struct pollfd`, laid out exactly as `poll(2)` expects.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The raw file descriptor (negative entries are ignored by the
    /// kernel, which is how absent slots are encoded).
    pub fd: i32,
    /// Requested readiness events ([`POLLIN`] / [`POLLOUT`]).
    pub events: i16,
    /// Kernel-reported readiness, valid after [`poll_fds`] returns.
    pub revents: i16,
}

impl PollFd {
    /// A pollfd watching `fd` for `events`.
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd { fd, events, revents: 0 }
    }

    /// Whether any of `mask` was reported back by the kernel.
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// Whether the kernel reported an error/hangup/invalid condition.
    pub fn failed(&self) -> bool {
        self.ready(POLLERR | POLLHUP | POLLNVAL)
    }
}

#[cfg(unix)]
mod imp {
    use super::PollFd;
    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    #[cfg(target_os = "macos")]
    type Nfds = u32;
    #[cfg(not(target_os = "macos"))]
    type Nfds = core::ffi::c_ulong;

    type RLimVal = u64;

    #[repr(C)]
    struct RLimit {
        cur: RLimVal,
        max: RLimVal,
    }

    #[cfg(target_os = "macos")]
    const RLIMIT_NOFILE: i32 = 8;
    #[cfg(not(target_os = "macos"))]
    const RLIMIT_NOFILE: i32 = 7;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: Nfds, timeout: i32) -> i32;
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }

    pub fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        // SAFETY: `PollFd` is `repr(C)` with the exact pollfd layout, the
        // slice gives a valid pointer/length pair, and the kernel writes
        // only `revents` within it.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            // A signal landed mid-poll: report "nothing ready"; the
            // caller's next loop iteration observes whatever the signal
            // flipped (e.g. the term flag).
            return Ok(0);
        }
        Err(err)
    }

    static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        TERM.store(true, Ordering::SeqCst);
    }

    pub fn term_flag() -> &'static AtomicBool {
        // SAFETY: `signal` with a plain fn pointer is the documented
        // installation API; the handler does one atomic store.
        unsafe {
            signal(SIGTERM, on_term);
            signal(SIGINT, on_term);
        }
        &TERM
    }

    pub fn raise_nofile_limit(min: u64) -> u64 {
        let mut lim = RLimit { cur: 0, max: 0 };
        // SAFETY: plain out-param struct calls against the C runtime.
        unsafe {
            if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
                return 0;
            }
            if lim.cur >= min {
                return lim.cur;
            }
            let want = RLimit { cur: min.min(lim.max), max: lim.max };
            if setrlimit(RLIMIT_NOFILE, &want) == 0 {
                return want.cur;
            }
            lim.cur
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::PollFd;
    use std::io;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    pub fn poll_fds(_fds: &mut [PollFd], _timeout: Duration) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "the event-loop transport needs poll(2); use pipe mode on this platform",
        ))
    }

    static TERM: AtomicBool = AtomicBool::new(false);

    pub fn term_flag() -> &'static AtomicBool {
        &TERM
    }

    pub fn raise_nofile_limit(_min: u64) -> u64 {
        0
    }
}

/// Wait until any watched fd is ready or `timeout` elapses; returns the
/// number of entries with nonzero `revents`.
///
/// A signal interrupting the wait is reported as zero ready fds, not an
/// error, so reactor loops stay signal-transparent.
///
/// # Errors
///
/// The raw OS error from `poll(2)`, or `Unsupported` on non-Unix targets.
pub fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    imp::poll_fds(fds, timeout)
}

/// Install (idempotently) a SIGTERM/SIGINT handler that flips the
/// returned flag, and return it.
///
/// The flag is process-global: `reecc serve --addr` polls it to turn a
/// termination signal into stop-accept → drain → one-line summary.
pub fn term_flag() -> &'static AtomicBool {
    imp::term_flag()
}

/// Best-effort raise of the open-file soft limit to at least `min`
/// (capped at the hard limit); returns the resulting soft limit, or 0 if
/// it could not be read. Storm tests call this so >1k sockets fit.
pub fn raise_nofile_limit(min: u64) -> u64 {
    imp::raise_nofile_limit(min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[cfg(unix)]
    use std::os::fd::AsRawFd;

    #[cfg(unix)]
    #[test]
    fn poll_times_out_on_a_silent_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        let started = Instant::now();
        let n = poll_fds(&mut fds, Duration::from_millis(40)).unwrap();
        assert_eq!(n, 0, "no data was sent");
        assert!(started.elapsed() >= Duration::from_millis(30));
        drop(client);
    }

    #[cfg(unix)]
    #[test]
    fn poll_reports_readable_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.write_all(b"x").unwrap();
        client.flush().unwrap();
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Duration::from_secs(5)).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLIN), "revents {:#x}", fds[0].revents);
    }

    #[test]
    fn raise_nofile_limit_is_monotone() {
        let now = raise_nofile_limit(64);
        if now > 0 {
            assert!(raise_nofile_limit(64) >= 64);
        }
    }

    #[test]
    fn term_flag_is_stable() {
        let a = term_flag() as *const _;
        let b = term_flag() as *const _;
        assert_eq!(a, b, "repeated installs return the same flag");
    }
}
