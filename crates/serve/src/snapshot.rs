//! Persistent sketch snapshots: build the APPROXER sketch once, serve it
//! forever.
//!
//! A snapshot is a versioned little-endian binary file:
//!
//! ```text
//! magic            8  b"REECCSK\0"
//! format version   4  u32 (currently 1)
//! graph fingerprint 8 u64   (reecc_graph::fingerprint, representation-level)
//! epsilon          8  f64 bit pattern
//! node count n     8  u64
//! row count d      8  u64
//! rows           d·n·8 f64 bit patterns, row-major
//! hull length      8  u64
//! hull vertices  l·8  u64 node ids
//! diagnostics      …  rows, converged_first_try, then the four index
//!                     lists (repaired / fallback / dropped / unconverged)
//!                     each as u64 length + u64 entries
//! checksum         8  u64 FNV-1a over every preceding byte
//! ```
//!
//! `load` verifies the checksum before interpreting anything, so a single
//! flipped byte anywhere in the file is a [`SnapshotError::ChecksumMismatch`],
//! and [`SketchSnapshot::into_engine`] refuses to marry a snapshot to a
//! graph whose fingerprint differs ([`SnapshotError::FingerprintMismatch`]).
//! A truncated file — any prefix of a valid snapshot — is always a typed
//! error naming the byte offset, never a raw `UnexpectedEof`.
//!
//! # Crash safety
//!
//! [`SketchSnapshot::save`] is atomic: bytes go to a same-directory temp
//! file, which is fsynced and then renamed over the target. A reader (or
//! a crash) can therefore only ever observe the old complete snapshot or
//! the new complete snapshot at the target path — never a torn write.
//! [`SketchSnapshot::load_with_retry`] adds bounded retry-with-backoff
//! for *transient* failures (classified as [`SnapshotError::Io`]);
//! corruption and mismatches fail immediately, because re-reading a
//! damaged file cannot help.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::failpoint;

use reecc_core::{QueryEngine, ResistanceSketch, SketchDiagnostics, SketchParams};
use reecc_graph::fingerprint::{fingerprint, Fnv1a};
use reecc_graph::Graph;

/// File magic: identifies a reecc sketch snapshot.
pub const MAGIC: [u8; 8] = *b"REECCSK\0";
/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Everything needed to restore a [`QueryEngine`] without rebuilding the
/// sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchSnapshot {
    /// Fingerprint of the graph the sketch was built for.
    pub fingerprint: u64,
    /// The `ε` the sketch targets.
    pub epsilon: f64,
    /// Graph order `n`.
    pub node_count: usize,
    /// Surviving sketch rows (`d × n`).
    pub rows: Vec<Vec<f64>>,
    /// Hull boundary vertex ids, in selection order.
    pub hull: Vec<usize>,
    /// The build's health record.
    pub diagnostics: SketchDiagnostics,
}

/// Failures while saving, loading, or validating snapshots. Corruption
/// ([`Self::ChecksumMismatch`]) and wrong-graph
/// ([`Self::FingerprintMismatch`]) are deliberately distinct variants so
/// operators can tell a damaged file from a stale one.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(String),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The trailing checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the contents.
        computed: u64,
    },
    /// The snapshot was built for a different graph.
    FingerprintMismatch {
        /// Fingerprint recorded in the snapshot.
        snapshot: u64,
        /// Fingerprint of the graph offered at load time.
        graph: u64,
    },
    /// The file is well-checksummed but structurally invalid (truncated
    /// counts, out-of-range ids, inconsistent diagnostics).
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(m) => write!(f, "snapshot i/o error: {m}"),
            SnapshotError::BadMagic => {
                write!(f, "not a reecc sketch snapshot (bad magic)")
            }
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "snapshot format version {v} is not supported (max {FORMAT_VERSION})")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (stored {stored:#018x}, computed {computed:#018x}) \
                 — the file is corrupted"
            ),
            SnapshotError::FingerprintMismatch { snapshot, graph } => write!(
                f,
                "snapshot was built for a different graph (snapshot fingerprint \
                 {snapshot:#018x}, graph fingerprint {graph:#018x}) — rebuild with sketch-build"
            ),
            SnapshotError::Corrupt(m) => write!(f, "snapshot is malformed: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl SketchSnapshot {
    /// Capture a snapshot of a built engine, stamping it with the
    /// fingerprint of the engine's graph.
    pub fn from_engine(engine: &QueryEngine) -> Self {
        SketchSnapshot {
            fingerprint: fingerprint(engine.graph()),
            epsilon: engine.sketch().epsilon(),
            node_count: engine.sketch().node_count(),
            rows: engine.sketch().to_rows(),
            hull: engine.hull().to_vec(),
            diagnostics: engine.sketch().diagnostics().clone(),
        }
    }

    /// Restore a [`QueryEngine`] against `g`, verifying the fingerprint
    /// and every structural invariant first. Sketch parameters not stored
    /// in the snapshot (CG options, recovery policy) take their defaults —
    /// they only affect what-if solves, not the persisted sketch.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::FingerprintMismatch`] when `g` is not the graph
    /// the sketch was built for; [`SnapshotError::Corrupt`] when the parts
    /// fail reassembly validation.
    pub fn into_engine(self, g: &Graph) -> Result<QueryEngine, SnapshotError> {
        self.into_engine_with_solver(g, None)
    }

    /// [`Self::into_engine`], adopting the runtime solver selection from
    /// `solver` when given: precision, preconditioner, threads, and block
    /// width — the knobs the serve CLI exposes — carry over, while the
    /// snapshot keeps authority over `epsilon` (and therefore over the
    /// error-budget default and CG tolerances derived from it). An auto
    /// Chebyshev request is resolved against `g` here, so the power
    /// iteration runs once at restore time and every downstream what-if
    /// or re-sketch reuses the cached estimate. Durable rank-1 mutations
    /// pin their own CG config and are unaffected by this selection.
    ///
    /// # Errors
    ///
    /// As [`Self::into_engine`].
    pub fn into_engine_with_solver(
        self,
        g: &Graph,
        solver: Option<&SketchParams>,
    ) -> Result<QueryEngine, SnapshotError> {
        let graph_fp = fingerprint(g);
        if graph_fp != self.fingerprint {
            return Err(SnapshotError::FingerprintMismatch {
                snapshot: self.fingerprint,
                graph: graph_fp,
            });
        }
        let sketch = ResistanceSketch::from_parts(
            self.rows,
            self.node_count,
            self.epsilon,
            self.diagnostics,
        )
        .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        let mut params = SketchParams::with_epsilon(self.epsilon);
        if let Some(s) = solver {
            params.precision = s.precision;
            params.threads = s.threads;
            params.block_size = s.block_size;
            params.cg.preconditioner = s.cg.preconditioner;
            params = params.resolved_for(g);
        }
        QueryEngine::from_parts(g.clone(), sketch, self.hull, params)
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))
    }

    /// Serialized size in bytes (exact).
    pub fn encoded_len(&self) -> usize {
        let d = self.rows.len();
        let diag_lists = self.diagnostics.repaired.len()
            + self.diagnostics.fallback_rows.len()
            + self.diagnostics.dropped.len()
            + self.diagnostics.unconverged.len();
        8 + 4                      // magic + version
            + 8 + 8 + 8 + 8        // fingerprint, epsilon, n, d
            + d * self.node_count * 8
            + 8 + self.hull.len() * 8
            + 8 + 8                // diagnostics.rows, converged_first_try
            + 4 * 8 + diag_lists * 8
            + 8 // checksum
    }

    /// Encode to bytes (checksummed).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&self.fingerprint.to_le_bytes());
        buf.extend_from_slice(&self.epsilon.to_bits().to_le_bytes());
        buf.extend_from_slice(&(self.node_count as u64).to_le_bytes());
        buf.extend_from_slice(&(self.rows.len() as u64).to_le_bytes());
        for row in &self.rows {
            for &x in row {
                buf.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
        push_index_list(&mut buf, &self.hull);
        buf.extend_from_slice(&(self.diagnostics.rows as u64).to_le_bytes());
        buf.extend_from_slice(&(self.diagnostics.converged_first_try as u64).to_le_bytes());
        push_index_list(&mut buf, &self.diagnostics.repaired);
        push_index_list(&mut buf, &self.diagnostics.fallback_rows);
        push_index_list(&mut buf, &self.diagnostics.dropped);
        push_index_list(&mut buf, &self.diagnostics.unconverged);
        let mut h = Fnv1a::new();
        h.update(&buf);
        buf.extend_from_slice(&h.finish().to_le_bytes());
        buf
    }

    /// Decode from bytes, verifying the checksum before interpreting
    /// anything else.
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`]; every corruption mode maps to a distinct
    /// variant.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < MAGIC.len() {
            // A proper prefix of the magic is a truncated snapshot, not a
            // foreign file; report the offset, never an EOF panic path.
            if !bytes.is_empty() && MAGIC.starts_with(bytes) {
                return Err(SnapshotError::Corrupt(format!(
                    "truncated at byte {} inside the {}-byte magic",
                    bytes.len(),
                    MAGIC.len()
                )));
            }
            return Err(SnapshotError::BadMagic);
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        // Magic + version + checksum is the smallest decodable file; below
        // that the trailing-checksum split itself would be out of bounds.
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(SnapshotError::Corrupt(format!(
                "truncated at byte {}: shorter than the {}-byte fixed header",
                bytes.len(),
                MAGIC.len() + 4 + 8
            )));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        let mut h = Fnv1a::new();
        h.update(body);
        let computed = h.finish();
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }

        let mut c = Cursor { bytes: body, pos: MAGIC.len() };
        let version = c.read_u32()?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let fingerprint = c.read_u64()?;
        let epsilon = f64::from_bits(c.read_u64()?);
        let node_count = c.read_count("node count")?;
        let row_count = c.read_count("row count")?;
        let cells = row_count
            .checked_mul(node_count)
            .and_then(|x| x.checked_mul(8))
            .ok_or_else(|| SnapshotError::Corrupt("row matrix size overflows".into()))?;
        if cells > c.remaining() {
            return Err(SnapshotError::Corrupt(format!(
                "row matrix claims {cells} bytes but only {} remain",
                c.remaining()
            )));
        }
        let mut rows = Vec::with_capacity(row_count);
        for _ in 0..row_count {
            let mut row = Vec::with_capacity(node_count);
            for _ in 0..node_count {
                row.push(f64::from_bits(c.read_u64()?));
            }
            rows.push(row);
        }
        let hull = c.read_index_list("hull")?;
        let diagnostics = SketchDiagnostics {
            rows: c.read_count("diagnostics rows")?,
            converged_first_try: c.read_count("diagnostics converged count")?,
            repaired: c.read_index_list("repaired rows")?,
            fallback_rows: c.read_index_list("fallback rows")?,
            dropped: c.read_index_list("dropped rows")?,
            unconverged: c.read_index_list("unconverged rows")?,
        };
        if c.remaining() != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "{} unexpected trailing bytes",
                c.remaining()
            )));
        }
        Ok(SketchSnapshot { fingerprint, epsilon, node_count, rows, hull, diagnostics })
    }

    /// Write to `writer` (encode + single write).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`].
    pub fn write_to<W: Write>(&self, mut writer: W) -> Result<usize, SnapshotError> {
        let bytes = self.to_bytes();
        writer.write_all(&bytes).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Ok(bytes.len())
    }

    /// Save to a file atomically, returning the byte count written.
    ///
    /// The bytes are written to a temp file in the target's directory,
    /// fsynced, and renamed into place, so no reader ever observes a
    /// partial snapshot at `path`: on any failure the previous contents
    /// of `path` (if any) are untouched and the temp file is removed.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`].
    pub fn save(&self, path: &Path) -> Result<usize, SnapshotError> {
        let bytes = self.to_bytes();
        let tmp = temp_sibling(path);
        let result = write_exclusive(&tmp, &bytes).and_then(|()| {
            // `snapshot.write` fires between the temp write and the
            // rename: the window where a crash must leave the target
            // untouched.
            failpoint::hit("snapshot.write").map_err(SnapshotError::Io)?;
            std::fs::rename(&tmp, path).map_err(|e| {
                SnapshotError::Io(format!(
                    "cannot rename {} over {}: {e}",
                    tmp.display(),
                    path.display()
                ))
            })
        });
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
            result?;
        }
        sync_parent_dir(path);
        Ok(bytes.len())
    }

    /// Read and decode from `reader`.
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`].
    pub fn read_from<R: Read>(mut reader: R) -> Result<Self, SnapshotError> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Self::from_bytes(&bytes)
    }

    /// Load from a file.
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`].
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        failpoint::hit("snapshot.load").map_err(SnapshotError::Io)?;
        let file = std::fs::File::open(path)
            .map_err(|e| SnapshotError::Io(format!("cannot open {}: {e}", path.display())))?;
        Self::read_from(std::io::BufReader::new(file))
    }

    /// Load from a file, retrying *transient* ([`SnapshotError::Io`])
    /// failures up to `policy.attempts` times with exponential backoff.
    /// Corruption, version, and fingerprint errors are returned
    /// immediately — re-reading a damaged file cannot fix it.
    ///
    /// Returns the snapshot and how many retries it took (0 = first try),
    /// which the serving layer surfaces as `snapshot_retries` in `stats`.
    ///
    /// # Errors
    ///
    /// The last [`SnapshotError::Io`] once the attempt budget is spent,
    /// or any non-transient error as soon as it occurs.
    pub fn load_with_retry(
        path: &Path,
        policy: &RetryPolicy,
    ) -> Result<(Self, u64), SnapshotError> {
        let attempts = policy.attempts.max(1);
        let mut backoff = policy.initial_backoff;
        let mut last = None;
        for attempt in 0..attempts {
            match Self::load(path) {
                Ok(snap) => return Ok((snap, u64::from(attempt))),
                Err(SnapshotError::Io(m)) => last = Some(SnapshotError::Io(m)),
                Err(fatal) => return Err(fatal),
            }
            if attempt + 1 < attempts {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// A human-readable multi-line summary (the `sketch-info` report).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "snapshot format v{FORMAT_VERSION}");
        let _ = writeln!(out, "graph fingerprint: {:#018x}", self.fingerprint);
        let _ = writeln!(
            out,
            "sketch: n = {}, d = {} (of {} built), eps = {}",
            self.node_count,
            self.rows.len(),
            self.diagnostics.rows,
            self.epsilon
        );
        let _ = writeln!(out, "hull boundary: l = {}", self.hull.len());
        let _ = writeln!(
            out,
            "health: {} converged first try, {} repaired ({} via dense fallback), \
             {} unconverged, {} dropped",
            self.diagnostics.converged_first_try,
            self.diagnostics.repaired.len(),
            self.diagnostics.fallback_rows.len(),
            self.diagnostics.unconverged.len(),
            self.diagnostics.dropped.len()
        );
        let _ = writeln!(out, "encoded size: {} bytes", self.encoded_len());
        out
    }
}

/// Bounded retry-with-backoff knobs for [`SketchSnapshot::load_with_retry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total load attempts (clamped to at least 1).
    pub attempts: u32,
    /// Sleep before the first retry; doubles on each subsequent one.
    pub initial_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: 3, initial_backoff: Duration::from_millis(50) }
    }
}

/// Atomically replace `path` with `bytes`: same-directory temp file +
/// fsync + rename + parent-directory fsync. Shared with the WAL layer
/// (`crate::wal`) for epoch graph files and the `CURRENT` pointer, so
/// every durable-publish step in the serving tier goes through one
/// audited code path.
///
/// # Errors
///
/// A human-readable message; the temp file is removed on failure and the
/// previous contents of `path` (if any) are untouched.
pub(crate) fn atomic_replace(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let tmp = temp_sibling(path);
    let result = write_exclusive(&tmp, bytes).map_err(|e| e.to_string()).and_then(|()| {
        std::fs::rename(&tmp, path).map_err(|e| {
            format!("cannot rename {} over {}: {e}", tmp.display(), path.display())
        })
    });
    if let Err(e) = result {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    sync_parent_dir(path);
    Ok(())
}

/// A temp path in the same directory as `path` (rename must not cross
/// filesystems), unique per process so concurrent builders cannot tread
/// on each other's half-written files.
fn temp_sibling(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map_or_else(|| "snapshot".to_string(), |n| n.to_string_lossy().into_owned());
    path.with_file_name(format!(".{name}.tmp.{}", std::process::id()))
}

/// Write `bytes` to a fresh file at `tmp` and fsync it to disk.
fn write_exclusive(tmp: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let io_err = |what: &str, e: std::io::Error| {
        SnapshotError::Io(format!("{what} {}: {e}", tmp.display()))
    };
    let mut file = std::fs::File::create(tmp).map_err(|e| io_err("cannot create", e))?;
    file.write_all(bytes).map_err(|e| io_err("cannot write", e))?;
    // fsync before rename: without it, a power loss after the rename can
    // surface a correctly named file with missing tail pages.
    file.sync_all().map_err(|e| io_err("cannot fsync", e))
}

/// Best-effort fsync of the directory entry after a rename; on platforms
/// or filesystems where opening a directory fails this is skipped — the
/// rename itself already guarantees no torn file is visible.
pub(crate) fn sync_parent_dir(path: &Path) {
    #[cfg(unix)]
    {
        let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
        if let Some(dir) = parent {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    #[cfg(not(unix))]
    let _ = path;
}

fn push_index_list(buf: &mut Vec<u8>, list: &[usize]) {
    buf.extend_from_slice(&(list.len() as u64).to_le_bytes());
    for &x in list {
        buf.extend_from_slice(&(x as u64).to_le_bytes());
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Corrupt(format!(
                "truncated: needed {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn read_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn read_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn read_count(&mut self, what: &str) -> Result<usize, SnapshotError> {
        let x = self.read_u64()?;
        usize::try_from(x)
            .map_err(|_| SnapshotError::Corrupt(format!("{what} {x} exceeds usize")))
    }

    fn read_index_list(&mut self, what: &str) -> Result<Vec<usize>, SnapshotError> {
        let len = self.read_count(what)?;
        if len.checked_mul(8).is_none_or(|bytes| bytes > self.remaining()) {
            return Err(SnapshotError::Corrupt(format!(
                "{what} claims {len} entries but only {} bytes remain",
                self.remaining()
            )));
        }
        (0..len).map(|_| self.read_count(what)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reecc_graph::generators::barabasi_albert;
    use reecc_graph::Edge;

    fn engine() -> QueryEngine {
        let g = barabasi_albert(40, 2, 9);
        QueryEngine::build(&g, &SketchParams { epsilon: 0.4, seed: 3, ..Default::default() })
            .unwrap()
    }

    #[test]
    fn byte_roundtrip_is_lossless() {
        let e = engine();
        let snap = SketchSnapshot::from_engine(&e);
        let bytes = snap.to_bytes();
        assert_eq!(bytes.len(), snap.encoded_len());
        let back = SketchSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn restored_engine_answers_identically() {
        let e = engine();
        let bytes = SketchSnapshot::from_engine(&e).to_bytes();
        let restored =
            SketchSnapshot::from_bytes(&bytes).unwrap().into_engine(e.graph()).unwrap();
        for v in [0usize, 13, 39] {
            assert_eq!(e.eccentricity(v), restored.eccentricity(v));
        }
        assert_eq!(e.hull(), restored.hull());
    }

    #[test]
    fn any_flipped_byte_is_detected() {
        let bytes = SketchSnapshot::from_engine(&engine()).to_bytes();
        // Flip one byte at a spread of offsets covering header, rows,
        // hull, diagnostics, and the checksum itself.
        let probes = [0, 9, 13, 21, 40, bytes.len() / 2, bytes.len() - 9, bytes.len() - 1];
        for &at in &probes {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            let err = SketchSnapshot::from_bytes(&bad).unwrap_err();
            assert!(
                matches!(err, SnapshotError::ChecksumMismatch { .. } | SnapshotError::BadMagic),
                "offset {at}: {err:?}"
            );
        }
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let snap = SketchSnapshot::from_engine(&engine());
        let mut bytes = snap.to_bytes();
        // Bump the version and re-seal the checksum so only the version
        // check can object.
        bytes[8] = 2;
        let body_len = bytes.len() - 8;
        let mut h = Fnv1a::new();
        h.update(&bytes[..body_len]);
        let sum = h.finish().to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum);
        assert_eq!(
            SketchSnapshot::from_bytes(&bytes).unwrap_err(),
            SnapshotError::UnsupportedVersion(2)
        );
        assert_eq!(SketchSnapshot::from_bytes(b"PNG!").unwrap_err(), SnapshotError::BadMagic);
        assert_eq!(SketchSnapshot::from_bytes(&[]).unwrap_err(), SnapshotError::BadMagic);
    }

    #[test]
    fn fingerprint_mismatch_is_its_own_error() {
        let e = engine();
        let snap = SketchSnapshot::from_engine(&e);
        let other = e.graph().with_edge(Edge::new(0, 39)).unwrap();
        let err = snap.into_engine(&other).unwrap_err();
        assert!(matches!(err, SnapshotError::FingerprintMismatch { .. }), "{err:?}");
        assert!(err.to_string().contains("different graph"), "{err}");
    }

    #[test]
    fn checksummed_but_inconsistent_content_is_corrupt() {
        let e = engine();
        let mut snap = SketchSnapshot::from_engine(&e);
        // Claim one more built row than the matrix carries; the encoding
        // is internally well-formed, so only semantic validation catches
        // it — at into_engine time.
        snap.diagnostics.rows += 1;
        let bytes = snap.to_bytes();
        let loaded = SketchSnapshot::from_bytes(&bytes).unwrap();
        let err = loaded.into_engine(e.graph()).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn every_truncation_prefix_is_a_typed_error_with_offset() {
        // A snapshot of a tiny engine keeps the loop over every prefix
        // length affordable (~1k prefixes).
        let g = barabasi_albert(12, 2, 5);
        let e = QueryEngine::build(
            &g,
            &SketchParams { epsilon: 0.9, seed: 1, ..Default::default() },
        )
        .unwrap();
        let bytes = SketchSnapshot::from_engine(&e).to_bytes();
        for len in 0..bytes.len() {
            let err = SketchSnapshot::from_bytes(&bytes[..len])
                .expect_err(&format!("prefix of {len} bytes must not decode"));
            match &err {
                SnapshotError::BadMagic => {
                    assert_eq!(len, 0, "only the empty prefix lacks magic evidence: {len}")
                }
                SnapshotError::Corrupt(msg) => {
                    assert!(
                        msg.contains("truncated") && msg.contains("byte"),
                        "prefix {len}: corrupt message must locate the cut: {msg}"
                    );
                }
                SnapshotError::ChecksumMismatch { .. } => {
                    assert!(len >= MAGIC.len() + 4 + 8, "prefix {len}: {err:?}");
                }
                other => panic!("prefix {len}: unexpected {other:?}"),
            }
        }
        assert!(SketchSnapshot::from_bytes(&bytes).is_ok(), "the full file still decodes");
    }

    #[test]
    fn save_is_atomic_overwrite_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("reecc-snap-at-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.sketch");
        let first = SketchSnapshot::from_engine(&engine());
        first.save(&path).unwrap();
        // Overwrite with a snapshot of a different engine; the new file
        // must fully replace the old one.
        let g = barabasi_albert(30, 2, 77);
        let e = QueryEngine::build(
            &g,
            &SketchParams { epsilon: 0.5, seed: 2, ..Default::default() },
        )
        .unwrap();
        let second = SketchSnapshot::from_engine(&e);
        second.save(&path).unwrap();
        assert_eq!(SketchSnapshot::load(&path).unwrap(), second);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|entry| entry.ok())
            .map(|entry| entry.file_name().to_string_lossy().into_owned())
            .filter(|name| name.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not survive a save: {leftovers:?}");
    }

    #[test]
    fn retry_policy_does_not_retry_corruption() {
        let dir = std::env::temp_dir().join(format!("reecc-snap-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.sketch");
        let mut bytes = SketchSnapshot::from_engine(&engine()).to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let started = std::time::Instant::now();
        let err = SketchSnapshot::load_with_retry(
            &path,
            &RetryPolicy { attempts: 5, initial_backoff: Duration::from_millis(200) },
        )
        .unwrap_err();
        assert!(matches!(err, SnapshotError::ChecksumMismatch { .. }), "{err:?}");
        assert!(
            started.elapsed() < Duration::from_millis(150),
            "corruption must fail fast, without backoff sleeps"
        );
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("reecc-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.sketch");
        let e = engine();
        let snap = SketchSnapshot::from_engine(&e);
        let written = snap.save(&path).unwrap();
        assert_eq!(written, snap.encoded_len());
        let back = SketchSnapshot::load(&path).unwrap();
        assert_eq!(back, snap);
        assert!(back.summary().contains("hull boundary"));
        assert!(matches!(
            SketchSnapshot::load(&dir.join("missing.sketch")).unwrap_err(),
            SnapshotError::Io(_)
        ));
    }
}
