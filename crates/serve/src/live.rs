//! Live mutable serving: error-budgeted rank-1 updates, a write-ahead
//! edge log, and epoch-swapped background re-sketch.
//!
//! [`LiveEngine`] wraps the immutable [`QueryEngine`] in an epoch
//! abstraction. Readers grab the current [`EpochView`] — one `RwLock`
//! read + `Arc` clone, never blocked by writers — and answer queries
//! against it for as long as they like. Mutations (`add-edge` /
//! `remove-edge`) serialize on a writer lock and go through four steps,
//! in an order that makes every crash recoverable:
//!
//! 1. **Validate + compute.** The rank-1 sketch update
//!    (`QueryEngine::with_added_edge` / `with_removed_edge`) runs first,
//!    producing a complete next engine. A mutation the math rejects
//!    (bridge removal, duplicate edge) never reaches the log, so replay
//!    can apply every logged record unconditionally.
//! 2. **WAL append + fsync** ([`crate::wal`]). Only after the record is
//!    durable may the client see an ack; `kill -9` after this point
//!    replays to the exact same state.
//! 3. **Publish.** The new engine is swapped into the `RwLock` — an
//!    `Arc` pointer store; in-flight queries finish on the old view.
//! 4. **Account.** Each update charges `r/(1+r)` (add) or `r/(1−r)`
//!    (remove) against the epoch's error budget — the factor by which
//!    that Sherman–Morrison step can have amplified existing sketch
//!    error. When the budget drains, a background thread rebuilds the
//!    sketch from scratch (PR 4's blocked build) and swaps in a fresh
//!    epoch: snapshot durably written → `CURRENT` flipped → WAL rotated,
//!    so a crash at any point recovers either the old epoch (with its
//!    complete WAL) or the new one (with the delta WAL) — never a
//!    half-epoch.
//!
//! Projection columns for replayed adds are seeded from the record
//! itself (`FNV-1a(u, v, seq)`), not from the build RNG, so replay after
//! restart is bitwise identical to the originally served update no
//! matter how the base engine was built.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use reecc_core::{DegradationPolicy, QueryEngine, QueryTier, SketchParams};
use reecc_graph::fingerprint::{fingerprint, Fnv1a};
use reecc_graph::{Edge, Graph};

use crate::failpoint;
use crate::snapshot::{atomic_replace, SketchSnapshot};
use crate::wal::{self, WalError, WalOp, WalRecord, WalWriter};

/// Knobs for live mutation handling.
#[derive(Debug, Clone, Default)]
pub struct LiveConfig {
    /// Durable epoch directory (`--wal-dir`). `None` = ephemeral: the
    /// engine accepts mutations but nothing survives a restart.
    pub wal_dir: Option<PathBuf>,
    /// Total error budget per epoch (`--error-budget`). `None` = use the
    /// sketch's ε: once the accumulated rank-1 amplification could rival
    /// the sketch's own approximation error, re-sketch.
    pub error_budget: Option<f64>,
}

/// Typed failures from the live mutation path.
#[derive(Debug)]
pub enum LiveError {
    /// The mutation itself is invalid (out-of-range node, duplicate or
    /// missing edge, disconnecting removal). Nothing was logged or
    /// published; maps to a `bad-request` on the wire.
    Rejected(reecc_core::CoreError),
    /// The write-ahead log failed (including an armed `wal.append` /
    /// `wal.replay` failpoint). For appends the mutation was NOT applied.
    Wal(WalError),
    /// Reading or writing an epoch snapshot failed.
    Snapshot(String),
    /// An epoch base graph file was missing or malformed.
    Graph(String),
    /// A WAL record could not be re-applied during startup replay — the
    /// log disagrees with the base graph it claims to extend.
    Replay {
        /// Sequence number of the offending record.
        seq: u64,
        /// Why it could not be applied.
        detail: String,
    },
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::Rejected(e) => write!(f, "mutation rejected: {e}"),
            LiveError::Wal(e) => write!(f, "{e}"),
            LiveError::Snapshot(msg) => write!(f, "epoch snapshot error: {msg}"),
            LiveError::Graph(msg) => write!(f, "epoch graph error: {msg}"),
            LiveError::Replay { seq, detail } => {
                write!(f, "cannot replay WAL record seq {seq}: {detail}")
            }
        }
    }
}

impl std::error::Error for LiveError {}

impl From<WalError> for LiveError {
    fn from(e: WalError) -> Self {
        LiveError::Wal(e)
    }
}

/// One immutable published epoch: what a reader answers queries against.
#[derive(Debug, Clone)]
pub struct EpochView {
    /// The engine for this view.
    pub engine: Arc<QueryEngine>,
    /// Fingerprint of `engine`'s graph (cache key space).
    pub fingerprint: u64,
    /// Tier eccentricity queries are answered at. Mutated views are
    /// always `Approx`: the hull was computed for a different graph, so
    /// the full `O(n·d)` scan answers instead of the hull shortcut.
    pub tier: QueryTier,
}

impl EpochView {
    fn fresh(engine: Arc<QueryEngine>) -> Self {
        // Mirror the pool's hull-trust policy for a freshly built or
        // freshly re-sketched engine.
        let policy = DegradationPolicy::default();
        let frac = engine.sketch().diagnostics().unconverged_fraction();
        let tier = if frac > policy.max_unconverged_fraction {
            QueryTier::Approx
        } else {
            QueryTier::Fast
        };
        let fingerprint = fingerprint(engine.graph());
        EpochView { engine, fingerprint, tier }
    }

    fn mutated(engine: QueryEngine) -> Self {
        let fingerprint = fingerprint(engine.graph());
        EpochView { engine: Arc::new(engine), fingerprint, tier: QueryTier::Approx }
    }
}

/// What [`LiveEngine::apply_mutation`] hands back for the ack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutationReceipt {
    /// Effective resistance of the mutated edge at apply time.
    pub r_uv: f64,
    /// Error-budget charge: `r/(1+r)` for adds, `r/(1−r)` for removals.
    pub cost: f64,
    /// Budget left in this epoch after the charge.
    pub budget_remaining: f64,
    /// Epoch the mutation was applied in.
    pub epoch: u64,
    /// The mutation's global sequence number.
    pub seq: u64,
    /// Whether this mutation drained the budget and kicked off a
    /// background re-sketch.
    pub resketch_kicked: bool,
}

/// Writer-side mutable state, serialized under one mutex.
struct MutState {
    /// Current epoch's WAL writer; `None` in ephemeral mode.
    wal: Option<WalWriter>,
    /// Next global sequence number.
    seq: u64,
    /// Records applied on top of the current epoch's base (mirrors the
    /// WAL; the re-sketch replays a suffix of it onto the fresh build).
    delta: Vec<WalRecord>,
    /// Budget spent in the current epoch.
    budget_spent: f64,
}

/// The live mutable engine: epoch views + WAL + error budget.
pub struct LiveEngine {
    published: RwLock<Arc<EpochView>>,
    muts: Mutex<MutState>,
    wal_dir: Option<PathBuf>,
    base_params: SketchParams,
    budget_total: f64,
    epoch: AtomicU64,
    mutations_applied: AtomicU64,
    resketches_total: AtomicU64,
    wal_bytes: AtomicU64,
    wal_replayed_on_start: u64,
    /// `budget_spent` mirrored as bits so `stats` never takes the writer
    /// lock.
    budget_spent_bits: AtomicU64,
    resketch_running: AtomicBool,
    resketch_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for LiveEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveEngine")
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .field("mutations_applied", &self.mutations_applied.load(Ordering::Relaxed))
            .field("budget_total", &self.budget_total)
            .field("wal_dir", &self.wal_dir)
            .finish()
    }
}

/// Deterministic projection-column seed for the add at `rec`: a function
/// of the record alone, so live apply and every future replay agree.
fn q_seed(rec: &WalRecord) -> u64 {
    let mut h = Fnv1a::new();
    h.update(b"reecc-live-q");
    h.update(&(rec.u as u64).to_le_bytes());
    h.update(&(rec.v as u64).to_le_bytes());
    h.update(&rec.seq.to_le_bytes());
    h.finish()
}

/// Apply one WAL record to `engine`, returning the next engine and the
/// budget charge.
fn apply_record(
    engine: &QueryEngine,
    rec: &WalRecord,
) -> Result<(QueryEngine, f64, f64), reecc_core::CoreError> {
    let edge = rec.edge();
    match rec.op {
        WalOp::AddEdge => {
            let (next, r_uv) = engine.with_added_edge(edge, q_seed(rec))?;
            Ok((next, r_uv, r_uv / (1.0 + r_uv)))
        }
        WalOp::RemoveEdge => {
            let (next, r_uv) = engine.with_removed_edge(edge)?;
            Ok((next, r_uv, r_uv / (1.0 - r_uv)))
        }
    }
}

/// Serialize `g` as an exact-index edge list: a `# nodes N edges M`
/// header, then one canonical `u v` line per edge. Unlike the dataset
/// reader in `reecc_graph::io` (which interns labels densely by first
/// appearance), [`parse_epoch_graph`] preserves indices verbatim — an
/// epoch base graph must round-trip to the *same* fingerprint.
fn render_epoch_graph(g: &Graph) -> String {
    let mut out = format!("# nodes {} edges {}\n", g.node_count(), g.edge_count());
    for e in g.edges() {
        out.push_str(&format!("{} {}\n", e.u, e.v));
    }
    out
}

fn parse_epoch_graph(text: &str) -> Result<Graph, String> {
    let mut n: Option<usize> = None;
    let mut edges = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if n.is_none() {
                let mut parts = rest.split_whitespace();
                if parts.next() == Some("nodes") {
                    n = parts.next().and_then(|t| t.parse().ok());
                }
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<usize, String> {
            tok.and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("line {}: expected two node ids", lineno + 1))
        };
        edges.push((parse(parts.next())?, parse(parts.next())?));
    }
    let n = n.ok_or_else(|| "missing `# nodes N edges M` header".to_string())?;
    Graph::from_edges(n, edges).map_err(|e| e.to_string())
}

impl LiveEngine {
    #[allow(clippy::too_many_arguments)]
    fn from_state(
        view: EpochView,
        wal: Option<WalWriter>,
        wal_dir: Option<PathBuf>,
        base_params: SketchParams,
        error_budget: Option<f64>,
        epoch: u64,
        delta: Vec<WalRecord>,
        budget_spent: f64,
        replayed: u64,
    ) -> Arc<LiveEngine> {
        let budget_total = error_budget.unwrap_or(base_params.epsilon).max(0.0);
        let seq = delta.last().map_or(0, |r| r.seq + 1);
        let wal_bytes = wal.as_ref().map_or(0, WalWriter::bytes);
        let mutations = delta.len() as u64;
        Arc::new(LiveEngine {
            published: RwLock::new(Arc::new(view)),
            muts: Mutex::new(MutState { wal, seq, delta, budget_spent }),
            wal_dir,
            base_params,
            budget_total,
            epoch: AtomicU64::new(epoch),
            mutations_applied: AtomicU64::new(mutations),
            resketches_total: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(wal_bytes),
            wal_replayed_on_start: replayed,
            budget_spent_bits: AtomicU64::new(budget_spent.to_bits()),
            resketch_running: AtomicBool::new(false),
            resketch_thread: Mutex::new(None),
        })
    }

    /// Wrap an engine with no durable log: mutations work, restarts
    /// forget. This is what `ServePool::new` uses, so a pool without
    /// `--wal-dir` behaves exactly as before plus in-memory mutability.
    pub fn ephemeral(engine: Arc<QueryEngine>, error_budget: Option<f64>) -> Arc<LiveEngine> {
        let params = *engine.params();
        let view = EpochView::fresh(engine);
        Self::from_state(view, None, None, params, error_budget, 0, Vec::new(), 0.0, 0)
    }

    /// Start epoch 0 in `wal_dir` from a freshly built (or snapshot-
    /// loaded) engine: write the base graph + sketch snapshot, create an
    /// empty WAL, then flip `CURRENT` — in that order, so a crash during
    /// bootstrap leaves either no `CURRENT` (re-bootstrap on next start)
    /// or a complete epoch 0.
    ///
    /// # Errors
    ///
    /// [`LiveError`] if any durable step fails; nothing is published.
    pub fn bootstrap(
        engine: Arc<QueryEngine>,
        wal_dir: &Path,
        error_budget: Option<f64>,
    ) -> Result<Arc<LiveEngine>, LiveError> {
        std::fs::create_dir_all(wal_dir).map_err(|e| {
            LiveError::Wal(WalError::Io(format!("cannot create {}: {e}", wal_dir.display())))
        })?;
        let fp = fingerprint(engine.graph());
        atomic_replace(
            &wal::graph_path(wal_dir, 0),
            render_epoch_graph(engine.graph()).as_bytes(),
        )
        .map_err(LiveError::Graph)?;
        SketchSnapshot::from_engine(&engine)
            .save(&wal::sketch_path(wal_dir, 0))
            .map_err(|e| LiveError::Snapshot(e.to_string()))?;
        let writer = WalWriter::create(&wal::wal_path(wal_dir, 0), 0, fp)?;
        wal::write_current(wal_dir, 0)?;
        let params = *engine.params();
        let view = EpochView::fresh(engine);
        Ok(Self::from_state(
            view,
            Some(writer),
            Some(wal_dir.to_path_buf()),
            params,
            error_budget,
            0,
            Vec::new(),
            0.0,
            0,
        ))
    }

    /// Recover the exact pre-crash served state from `wal_dir`: load the
    /// epoch named by `CURRENT` (base graph + sketch snapshot), then
    /// replay the epoch's WAL record by record with the same seeds the
    /// live path used. Torn WAL tails are truncated; any deeper damage is
    /// a typed error, never a panic and never silently-wrong state.
    ///
    /// # Errors
    ///
    /// [`LiveError::Graph`] / [`LiveError::Snapshot`] / [`LiveError::Wal`]
    /// on unreadable epoch files, [`LiveError::Replay`] when a logged
    /// record cannot be applied to the state it claims to extend.
    pub fn recover(
        wal_dir: &Path,
        error_budget: Option<f64>,
    ) -> Result<Arc<LiveEngine>, LiveError> {
        Self::recover_with_solver(wal_dir, error_budget, None)
    }

    /// [`Self::recover`], adopting the runtime solver selection from
    /// `solver` (precision, preconditioner, threads, block width — the
    /// serve CLI flags) for the recovered engine's what-if solves and
    /// future re-sketches. WAL replay itself is unaffected: durable
    /// rank-1 mutations pin their CG config, so the replayed state is
    /// bitwise identical whatever flags the restart was given.
    ///
    /// # Errors
    ///
    /// As [`Self::recover`].
    pub fn recover_with_solver(
        wal_dir: &Path,
        error_budget: Option<f64>,
        solver: Option<&SketchParams>,
    ) -> Result<Arc<LiveEngine>, LiveError> {
        let epoch = wal::read_current(wal_dir)?.ok_or_else(|| {
            LiveError::Graph(format!("{} has no CURRENT pointer", wal_dir.display()))
        })?;
        let graph_file = wal::graph_path(wal_dir, epoch);
        let text = std::fs::read_to_string(&graph_file).map_err(|e| {
            LiveError::Graph(format!("cannot read {}: {e}", graph_file.display()))
        })?;
        let graph = parse_epoch_graph(&text)
            .map_err(|e| LiveError::Graph(format!("{}: {e}", graph_file.display())))?;
        let fp = fingerprint(&graph);
        let snapshot = SketchSnapshot::load(&wal::sketch_path(wal_dir, epoch))
            .map_err(|e| LiveError::Snapshot(e.to_string()))?;
        let engine = snapshot
            .into_engine_with_solver(&graph, solver)
            .map_err(|e| LiveError::Snapshot(e.to_string()))?;
        let base_params = *engine.params();
        let (writer, records) =
            WalWriter::open_append(&wal::wal_path(wal_dir, epoch), epoch, fp)?;
        let base_view = EpochView::fresh(Arc::new(engine));
        let mut view = base_view.clone();
        let mut budget_spent = 0.0;
        for rec in &records {
            failpoint::hit("wal.replay").map_err(|msg| LiveError::Wal(WalError::Io(msg)))?;
            match apply_record(&view.engine, rec) {
                Ok((next, _r_uv, cost)) => {
                    budget_spent += cost;
                    view = EpochView::mutated(next);
                }
                Err(e) => {
                    return Err(LiveError::Replay { seq: rec.seq, detail: e.to_string() })
                }
            }
        }
        let replayed = records.len() as u64;
        Ok(Self::from_state(
            view,
            Some(writer),
            Some(wal_dir.to_path_buf()),
            base_params,
            error_budget,
            epoch,
            records,
            budget_spent,
            replayed,
        ))
    }

    /// Open a live engine per `config`: recover when the WAL directory
    /// already has a `CURRENT` epoch (ignoring `engine`), bootstrap it
    /// when it does not, ephemeral when no directory was given.
    ///
    /// Returns the engine and whether it was recovered from disk.
    ///
    /// # Errors
    ///
    /// See [`LiveEngine::bootstrap`] and [`LiveEngine::recover`].
    pub fn open(
        engine: Arc<QueryEngine>,
        config: &LiveConfig,
    ) -> Result<(Arc<LiveEngine>, bool), LiveError> {
        match &config.wal_dir {
            None => Ok((Self::ephemeral(engine, config.error_budget), false)),
            Some(dir) => {
                let has_current =
                    dir.is_dir() && wal::read_current(dir).map(|c| c.is_some()).unwrap_or(true);
                if has_current {
                    let solver = *engine.params();
                    Ok((
                        Self::recover_with_solver(dir, config.error_budget, Some(&solver))?,
                        true,
                    ))
                } else {
                    Ok((Self::bootstrap(engine, dir, config.error_budget)?, false))
                }
            }
        }
    }

    /// The currently published view. One `RwLock` read + `Arc` clone;
    /// never blocks on mutations or re-sketches in progress.
    pub fn view(&self) -> Arc<EpochView> {
        Arc::clone(&self.published.read().expect("published view poisoned"))
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Mutations applied over the engine's life (replayed ones included).
    pub fn mutations_applied(&self) -> u64 {
        self.mutations_applied.load(Ordering::Relaxed)
    }

    /// The per-epoch error budget.
    pub fn budget_total(&self) -> f64 {
        self.budget_total
    }

    /// Budget left in the current epoch.
    pub fn budget_remaining(&self) -> f64 {
        let spent = f64::from_bits(self.budget_spent_bits.load(Ordering::Relaxed));
        (self.budget_total - spent).max(0.0)
    }

    /// Background re-sketches completed.
    pub fn resketches_total(&self) -> u64 {
        self.resketches_total.load(Ordering::Relaxed)
    }

    /// Durable WAL length in bytes (0 in ephemeral mode).
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes.load(Ordering::Relaxed)
    }

    /// Records replayed from the WAL when this engine started.
    pub fn wal_replayed_on_start(&self) -> u64 {
        self.wal_replayed_on_start
    }

    /// Whether a background re-sketch is in flight.
    pub fn resketch_running(&self) -> bool {
        self.resketch_running.load(Ordering::SeqCst)
    }

    /// Mutations applied on top of the current epoch's base.
    pub fn mutations_in_epoch(&self) -> u64 {
        self.muts.lock().expect("mutation state poisoned").delta.len() as u64
    }

    /// Apply one mutation: validate + compute, WAL append + fsync,
    /// publish, account — in that order (see the module doc for why).
    ///
    /// # Errors
    ///
    /// [`LiveError::Rejected`] when the mutation is invalid (nothing
    /// logged or published), [`LiveError::Wal`] when the durable append
    /// fails (mutation NOT applied; the client must not treat it as
    /// acked).
    pub fn apply_mutation(
        self: &Arc<Self>,
        op: WalOp,
        u: usize,
        v: usize,
    ) -> Result<MutationReceipt, LiveError> {
        if u == v {
            return Err(LiveError::Rejected(reecc_core::CoreError::Numerical(format!(
                "an edge needs two distinct endpoints, got {u} twice"
            ))));
        }
        let edge = Edge::new(u, v);
        let mut muts = self.muts.lock().expect("mutation state poisoned");
        let view = self.view();
        let rec = WalRecord { op, u: edge.u, v: edge.v, seq: muts.seq };
        // 1. Validate + compute. A rejected mutation never reaches the
        // WAL, so replay applies every logged record unconditionally.
        let (next, r_uv, cost) =
            apply_record(&view.engine, &rec).map_err(LiveError::Rejected)?;
        // 2. Durability point: append + fsync before the ack.
        if let Some(wal) = muts.wal.as_mut() {
            let bytes = wal.append(&rec)?;
            self.wal_bytes.store(bytes, Ordering::Relaxed);
        }
        // 3. Publish: in-flight readers keep the old Arc.
        *self.published.write().expect("published view poisoned") =
            Arc::new(EpochView::mutated(next));
        // 4. Account.
        muts.seq += 1;
        muts.delta.push(rec);
        muts.budget_spent += cost;
        self.budget_spent_bits.store(muts.budget_spent.to_bits(), Ordering::Relaxed);
        self.mutations_applied.fetch_add(1, Ordering::Relaxed);
        let budget_remaining = (self.budget_total - muts.budget_spent).max(0.0);
        let resketch_kicked = muts.budget_spent >= self.budget_total && self.kick_resketch();
        Ok(MutationReceipt {
            r_uv,
            cost,
            budget_remaining,
            epoch: self.epoch(),
            seq: rec.seq,
            resketch_kicked,
        })
    }

    /// Start a background re-sketch unless one is already running.
    /// Returns whether a new one was started.
    fn kick_resketch(self: &Arc<Self>) -> bool {
        if self.resketch_running.swap(true, Ordering::SeqCst) {
            return false;
        }
        let me = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("reecc-resketch".to_string())
            .spawn(move || {
                // Containment: a panic in the rebuild (or an armed
                // `resketch.build` panic failpoint) costs this attempt,
                // never the serving pool — the old epoch keeps serving
                // and the drained budget re-kicks on the next mutation.
                let result = catch_unwind(AssertUnwindSafe(|| me.resketch()));
                if let Err(payload) = result {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                        .unwrap_or_else(|| "opaque panic".to_string());
                    eprintln!("reecc-serve: re-sketch aborted by panic: {msg}");
                }
                me.resketch_running.store(false, Ordering::SeqCst);
            })
            .expect("spawn re-sketch thread");
        let mut slot = self.resketch_thread.lock().expect("resketch handle poisoned");
        if let Some(old) = slot.replace(handle) {
            // A previous re-sketch already finished (resketch_running was
            // false); reap its thread.
            let _ = old.join();
        }
        true
    }

    /// The re-sketch body: rebuild from the published graph, then commit
    /// a new durable epoch. Runs on the background thread; any failure
    /// logs and keeps the old epoch serving.
    fn resketch(self: &Arc<Self>) {
        if let Err(msg) = failpoint::hit("resketch.build") {
            eprintln!("reecc-serve: re-sketch aborted: {msg}");
            return;
        }
        // Kickoff state: the graph to rebuild and how much of the delta
        // it already contains. Taken under the writer lock so the pair is
        // consistent; mutations applied after this land in delta[split..]
        // and are replayed onto the fresh build at commit.
        let (g0, split) = {
            let muts = self.muts.lock().expect("mutation state poisoned");
            (self.view().engine.graph().clone(), muts.delta.len())
        };
        let fresh = match QueryEngine::build(&g0, &self.base_params) {
            Ok(engine) => engine,
            Err(e) => {
                eprintln!("reecc-serve: re-sketch build failed: {e}");
                return;
            }
        };
        if let Err(e) = self.commit_epoch(g0, split, fresh) {
            eprintln!("reecc-serve: epoch swap aborted, keeping old epoch: {e}");
        }
    }

    /// Commit a freshly rebuilt engine as the next epoch. Ordering is the
    /// crash-safety contract (DESIGN.md §11): new epoch files durably
    /// written (graph, snapshot, delta WAL) **then** `CURRENT` flipped
    /// **then** in-memory swap; the old epoch's files are removed only
    /// after the flip. A crash before the flip recovers the old epoch
    /// from its complete WAL; after, the new epoch plus its delta WAL —
    /// both replay to the same served state.
    fn commit_epoch(
        self: &Arc<Self>,
        g0: Graph,
        split: usize,
        fresh: QueryEngine,
    ) -> Result<(), LiveError> {
        let mut muts = self.muts.lock().expect("mutation state poisoned");
        let tail: Vec<WalRecord> = muts.delta[split..].to_vec();
        // The durable snapshot is the PRE-tail build (it matches g0); the
        // tail lives in the new epoch's WAL and is replayed on recovery.
        let snapshot = SketchSnapshot::from_engine(&fresh);
        let fresh = Arc::new(fresh);
        let mut view = EpochView::fresh(Arc::clone(&fresh));
        let mut budget_spent = 0.0;
        for rec in &tail {
            let (next, _r_uv, cost) =
                apply_record(&view.engine, rec).map_err(LiveError::Rejected)?;
            budget_spent += cost;
            view = EpochView::mutated(next);
        }
        let old_epoch = self.epoch();
        let new_epoch = old_epoch + 1;
        let new_writer = match &self.wal_dir {
            Some(dir) => {
                let fp = fingerprint(&g0);
                atomic_replace(
                    &wal::graph_path(dir, new_epoch),
                    render_epoch_graph(&g0).as_bytes(),
                )
                .map_err(LiveError::Graph)?;
                snapshot
                    .save(&wal::sketch_path(dir, new_epoch))
                    .map_err(|e| LiveError::Snapshot(e.to_string()))?;
                let mut writer =
                    WalWriter::create(&wal::wal_path(dir, new_epoch), new_epoch, fp)?;
                for rec in &tail {
                    writer.append(rec)?;
                }
                // Everything the new epoch needs is durable; this is the
                // last instant a crash (or injected failure) must recover
                // the OLD epoch.
                failpoint::hit("epoch.swap").map_err(|msg| {
                    self.remove_epoch_files(dir, new_epoch);
                    LiveError::Wal(WalError::Io(msg))
                })?;
                wal::write_current(dir, new_epoch)?;
                Some(writer)
            }
            None => {
                failpoint::hit("epoch.swap")
                    .map_err(|msg| LiveError::Wal(WalError::Io(msg)))?;
                None
            }
        };
        // Point of no return: CURRENT names the new epoch. Swap memory.
        self.wal_bytes
            .store(new_writer.as_ref().map_or(0, WalWriter::bytes), Ordering::Relaxed);
        muts.wal = new_writer;
        muts.delta = tail;
        muts.budget_spent = budget_spent;
        self.budget_spent_bits.store(budget_spent.to_bits(), Ordering::Relaxed);
        *self.published.write().expect("published view poisoned") = Arc::new(view);
        self.epoch.store(new_epoch, Ordering::SeqCst);
        self.resketches_total.fetch_add(1, Ordering::SeqCst);
        if let Some(dir) = &self.wal_dir {
            self.remove_epoch_files(dir, old_epoch);
        }
        Ok(())
    }

    /// Best-effort cleanup of one epoch's three files.
    fn remove_epoch_files(&self, dir: &Path, epoch: u64) {
        for path in [
            wal::graph_path(dir, epoch),
            wal::sketch_path(dir, epoch),
            wal::wal_path(dir, epoch),
        ] {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Block until any in-flight re-sketch finishes (test + drain hook).
    pub fn join_resketch(&self) {
        let handle = self.resketch_thread.lock().expect("resketch handle poisoned").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for LiveEngine {
    fn drop(&mut self) {
        let handle = self.resketch_thread.lock().ok().and_then(|mut s| s.take());
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reecc_core::ExactResistance;
    use reecc_graph::generators::{barabasi_albert, cycle};

    fn engine(g: &Graph, eps: f64) -> Arc<QueryEngine> {
        Arc::new(
            QueryEngine::build(
                g,
                &SketchParams { epsilon: eps, seed: 7, ..Default::default() },
            )
            .unwrap(),
        )
    }

    fn assert_matches_exact(view: &EpochView, eps: f64) {
        let exact = ExactResistance::new(view.engine.graph()).unwrap();
        let n = view.engine.graph().node_count();
        for u in 0..n {
            for v in (u + 1)..n {
                let approx = view.engine.resistance(u, v);
                let truth = exact.resistance(u, v);
                assert!(
                    (approx - truth).abs() <= eps * truth.max(1e-9),
                    "r({u},{v}): sketch {approx} vs exact {truth}"
                );
            }
        }
    }

    #[test]
    fn ephemeral_mutations_publish_and_track_exact() {
        let g = cycle(12);
        let live = LiveEngine::ephemeral(engine(&g, 0.3), Some(1000.0));
        let before = live.view();
        let receipt = live.apply_mutation(WalOp::AddEdge, 0, 6).unwrap();
        assert_eq!(receipt.seq, 0);
        assert!(receipt.r_uv > 0.0 && receipt.cost > 0.0);
        assert!(!receipt.resketch_kicked);
        let after = live.view();
        assert!(after.engine.graph().has_edge(0, 6));
        assert!(!before.engine.graph().has_edge(0, 6), "old view untouched");
        assert_ne!(after.fingerprint, before.fingerprint);
        assert_eq!(after.tier, QueryTier::Approx, "mutated view cannot trust the hull");
        assert_matches_exact(&after, 0.35);
        // Remove it again: round-trip back to a cycle-shaped graph.
        live.apply_mutation(WalOp::RemoveEdge, 6, 0).unwrap();
        assert!(!live.view().engine.graph().has_edge(0, 6));
        assert_eq!(live.mutations_applied(), 2);
    }

    #[test]
    fn invalid_mutations_are_rejected_without_side_effects() {
        let g = cycle(8);
        let live = LiveEngine::ephemeral(engine(&g, 0.4), Some(1000.0));
        let fp = live.view().fingerprint;
        for (op, u, v) in [
            (WalOp::AddEdge, 0, 1),    // already present
            (WalOp::AddEdge, 3, 3),    // self-loop
            (WalOp::AddEdge, 0, 99),   // out of range
            (WalOp::RemoveEdge, 0, 2), // not present
        ] {
            let err = live.apply_mutation(op, u, v).unwrap_err();
            assert!(matches!(err, LiveError::Rejected(_)), "({op:?},{u},{v}): {err}");
        }
        assert_eq!(live.view().fingerprint, fp, "rejected mutations must not publish");
        assert_eq!(live.mutations_applied(), 0);
    }

    #[test]
    fn drained_budget_kicks_resketch_and_restores_fast_tier() {
        let g = barabasi_albert(40, 2, 11);
        // A tiny budget: the very first mutation drains it.
        let live = LiveEngine::ephemeral(engine(&g, 0.4), Some(1e-6));
        let receipt = live.apply_mutation(WalOp::AddEdge, 0, 39).unwrap();
        assert!(receipt.resketch_kicked, "{receipt:?}");
        assert_eq!(receipt.budget_remaining, 0.0);
        live.join_resketch();
        assert_eq!(live.resketches_total(), 1);
        assert_eq!(live.epoch(), 1);
        let view = live.view();
        assert!(view.engine.graph().has_edge(0, 39), "mutation survives the swap");
        assert_eq!(view.tier, QueryTier::Fast, "fresh epoch trusts its hull again");
        assert!(live.budget_remaining() > 0.0, "budget reset for the new epoch");
        assert_eq!(live.mutations_in_epoch(), 0);
    }

    #[test]
    fn epoch_graph_round_trips_fingerprint_exactly() {
        let g = barabasi_albert(30, 2, 5);
        let text = render_epoch_graph(&g);
        let back = parse_epoch_graph(&text).unwrap();
        assert_eq!(fingerprint(&back), fingerprint(&g));
        assert!(parse_epoch_graph("0 1\n").is_err(), "header is mandatory");
        assert!(parse_epoch_graph("# nodes 4 edges 1\n0 x\n").is_err());
    }

    #[test]
    fn bootstrap_then_recover_reproduces_served_state() {
        let dir = std::env::temp_dir().join(format!("reecc-live-rec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = cycle(10);
        let live = LiveEngine::bootstrap(engine(&g, 0.3), &dir, Some(1000.0)).unwrap();
        live.apply_mutation(WalOp::AddEdge, 0, 5).unwrap();
        live.apply_mutation(WalOp::AddEdge, 2, 7).unwrap();
        live.apply_mutation(WalOp::RemoveEdge, 0, 1).unwrap();
        let served = live.view();
        drop(live); // simulated crash: nothing flushed beyond the WAL's acks
        let recovered = LiveEngine::recover(&dir, Some(1000.0)).unwrap();
        assert_eq!(recovered.wal_replayed_on_start(), 3);
        let view = recovered.view();
        assert_eq!(view.fingerprint, served.fingerprint, "same graph after replay");
        // Bitwise-identical sketch state: replay used the same seeds.
        let n = view.engine.graph().node_count();
        for u in 0..n {
            for v in (u + 1)..n {
                let a = served.engine.resistance(u, v);
                let b = view.engine.resistance(u, v);
                assert_eq!(a.to_bits(), b.to_bits(), "r({u},{v}): {a} vs {b}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_prefers_recovery_over_the_passed_engine() {
        let dir = std::env::temp_dir().join(format!("reecc-live-open-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = cycle(9);
        let config = LiveConfig { wal_dir: Some(dir.clone()), error_budget: Some(1000.0) };
        let (live, recovered) = LiveEngine::open(engine(&g, 0.4), &config).unwrap();
        assert!(!recovered, "fresh dir bootstraps");
        live.apply_mutation(WalOp::AddEdge, 1, 5).unwrap();
        let fp = live.view().fingerprint;
        drop(live);
        // Second start passes a DIFFERENT engine; recovery must win.
        let other = engine(&cycle(9), 0.4);
        let (live, recovered) = LiveEngine::open(other, &config).unwrap();
        assert!(recovered);
        assert_eq!(live.view().fingerprint, fp);
        assert_eq!(live.wal_replayed_on_start(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_resketch_rotates_wal_and_survives_restart() {
        let dir = std::env::temp_dir().join(format!("reecc-live-rot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = barabasi_albert(36, 2, 13);
        let live = LiveEngine::bootstrap(engine(&g, 0.4), &dir, Some(1e-6)).unwrap();
        let receipt = live.apply_mutation(WalOp::AddEdge, 0, 35).unwrap();
        assert!(receipt.resketch_kicked);
        live.join_resketch();
        assert_eq!(live.epoch(), 1);
        assert_eq!(wal::read_current(&dir), Ok(Some(1)));
        assert!(wal::sketch_path(&dir, 1).exists());
        assert!(!wal::wal_path(&dir, 0).exists(), "old epoch files removed after the flip");
        let served = live.view();
        drop(live);
        let recovered = LiveEngine::recover(&dir, Some(1e-6)).unwrap();
        assert_eq!(recovered.epoch(), 1);
        assert_eq!(recovered.wal_replayed_on_start(), 0, "delta was folded into the snapshot");
        assert_eq!(recovered.view().fingerprint, served.fingerprint);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_wal_append_leaves_state_unpublished() {
        let dir = std::env::temp_dir().join(format!("reecc-live-fpa-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = cycle(8);
        let live = LiveEngine::bootstrap(engine(&g, 0.4), &dir, Some(1000.0)).unwrap();
        let fp = live.view().fingerprint;
        failpoint::configure("wal.append", failpoint::Action::IoError, Some(1));
        let err = live.apply_mutation(WalOp::AddEdge, 0, 4).unwrap_err();
        assert!(matches!(err, LiveError::Wal(_)), "{err}");
        assert_eq!(live.view().fingerprint, fp, "unlogged mutation must not be served");
        assert_eq!(live.mutations_applied(), 0);
        // The next attempt goes through and is durable.
        live.apply_mutation(WalOp::AddEdge, 0, 4).unwrap();
        let served_fp = live.view().fingerprint;
        drop(live);
        let recovered = LiveEngine::recover(&dir, Some(1000.0)).unwrap();
        assert_eq!(recovered.view().fingerprint, served_fp);
        std::fs::remove_dir_all(&dir).ok();
    }
}
