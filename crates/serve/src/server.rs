//! Transports: newline-delimited JSON over a pipe or a TCP socket.
//!
//! Both transports speak the same protocol (see [`crate::protocol`]): one
//! JSON object per line in, one JSON object per line out, in order. The
//! pipe mode drives a single session over any `BufRead`/`Write` pair
//! (stdin/stdout in the CLI, in-memory buffers in tests). The TCP mode is
//! a readiness-driven event loop: one reactor thread owns a nonblocking
//! listener and every connection, multiplexed by `poll(2)` (via
//! [`crate::sys`], std-only), with the bounded [`ServePool`] behind it
//! for compute. No thread is ever parked per connection, so a connection
//! storm or a crowd of slow-loris clients costs file descriptors and
//! bounded buffers — never threads.
//!
//! Transport code never computes: it parses, submits, and forwards. The
//! pool's bounded queue is the only admission control for *work*; the
//! reactor adds its own hygiene for *connections* ([`ServerConfig`]):
//!
//! * admission control — a hard connection cap; clients past it get one
//!   `overloaded` line (through the same bounded write path as any other
//!   response) and a close, and accepts are batch-limited per tick so an
//!   accept storm cannot starve live connections;
//! * slow-client defense — idle and write-stall deadlines enforced by a
//!   lazy timer wheel ([`crate::timer`]); a client that stops reading its
//!   responses is shed the moment its bounded write buffer would
//!   overflow, never allowed to wedge the reactor;
//! * a line-length cap — a client streaming bytes without a newline
//!   cannot grow a read buffer without bound;
//! * [`TcpServer::stop`] tears the whole loop down promptly: the reactor
//!   observes the flag within one tick, closes every connection, and
//!   joins, even with clients parked mid-connection.
//!
//! Per-connection state is a small machine: bytes are framed into lines
//! across arbitrary TCP segmentation, complete lines queue in a bounded
//! inbox (reads pause when it fills), at most one request per connection
//! is in flight in the pool (which keeps responses in request order with
//! no reorder buffer), and every outbound line — answers, shed notices,
//! idle warnings — goes through one bounded write buffer flushed as
//! `poll(2)` reports writability. Pool workers hand finished responses to
//! the reactor through a completion queue plus a loopback wake socket, so
//! results are flushed promptly instead of waiting out a poll timeout.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::failpoint;
use crate::pool::{ServePool, SubmitError};
use crate::protocol::{parse_request, render_job_event, ErrorKind, Outcome, Request, Response};
use crate::sys::{self, PollFd};
use crate::timer::TimerWheel;

/// How long one `optimize-events` follow tick blocks waiting for a fresh
/// event before re-checking the job's terminal state (pipe mode only; the
/// reactor polls followers nonblockingly every loop tick).
const FOLLOW_TICK: Duration = Duration::from_millis(250);

/// Complete-but-undispatched request lines buffered per connection before
/// the reactor stops reading from its socket (backpressure by unpolled
/// bytes, bounded by the kernel receive buffer).
const INBOX_MAX: usize = 128;

/// Socket reads per connection per tick; bounds one loud client's share
/// of a reactor tick at `READ_ROUNDS × 4096` bytes.
const READ_ROUNDS: usize = 16;

/// How long `optimize-result` with `"wait":true` may stay pending on a
/// connection before answering with the job's current state (mirrors the
/// pool's blocking-path timeout).
const RESULT_WAIT_TIMEOUT: Duration = Duration::from_secs(3600);

/// Connection-hygiene knobs for the TCP transport.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Maximum simultaneous sessions; connections beyond it are answered
    /// with one `overloaded` error line and closed (clamped to ≥ 1).
    pub max_connections: usize,
    /// A session whose client sends nothing for this long is closed with
    /// an in-band `deadline-exceeded` notice.
    pub idle_timeout: Duration,
    /// The reactor tick: the upper bound on how long the loop sleeps in
    /// `poll(2)` when nothing is ready (and therefore on shutdown and
    /// timer latency).
    pub poll_interval: Duration,
    /// Write-stall deadline: a client that stops reading its responses
    /// for this long while output is pending is dropped.
    pub write_timeout: Duration,
    /// Maximum request-line length in bytes; longer lines error the
    /// session (clamped to ≥ 1024).
    pub max_line_bytes: usize,
    /// Bound on one connection's pending output in bytes; a client whose
    /// buffered responses would exceed it is shed (clamped to ≥ 1024).
    /// Total reactor write memory is therefore bounded by
    /// `max_connections × write_buffer_cap` plus admission slack.
    pub write_buffer_cap: usize,
    /// Accepts per reactor tick (clamped to ≥ 1): rate-limits admission
    /// under a connection storm so live sessions keep being served.
    pub accept_burst: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            idle_timeout: Duration::from_secs(300),
            poll_interval: Duration::from_millis(50),
            write_timeout: Duration::from_secs(10),
            max_line_bytes: 64 * 1024,
            write_buffer_cap: 256 * 1024,
            accept_burst: 64,
        }
    }
}

/// Counters for one pipe/socket session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Non-blank lines read.
    pub requests: u64,
    /// Responses that carried an error outcome (parse errors included).
    pub errors: u64,
}

/// Serve one newline-delimited JSON session: read a request per line from
/// `reader`, write exactly one response line to `writer`, until EOF.
///
/// Blank lines are skipped; unparseable lines produce a `parse` error
/// response instead of killing the session, so one bad client line never
/// costs the stream.
///
/// # Errors
///
/// Only transport failures (read/write/flush) abort the session; protocol
/// and engine errors are reported in-band.
pub fn serve_pipe<R: BufRead, W: Write>(
    pool: &ServePool,
    reader: R,
    mut writer: W,
) -> io::Result<SessionStats> {
    let mut stats = SessionStats::default();
    for line in reader.lines() {
        let line = line?;
        respond_line(pool, &line, &mut writer, &mut stats)?;
    }
    Ok(stats)
}

/// Parse-submit-answer one request line (pipe transport).
fn respond_line<W: Write>(
    pool: &ServePool,
    line: &str,
    writer: &mut W,
    stats: &mut SessionStats,
) -> io::Result<()> {
    if line.trim().is_empty() {
        return Ok(());
    }
    stats.requests += 1;
    let response = match parse_request(line) {
        // `optimize-events` is the one op that answers with *multiple*
        // lines: it streams per-iteration progress, then closes with a
        // status line.
        Ok(env) => {
            if let Request::OptimizeEvents { job, since, follow } = env.request {
                return stream_job_events(pool, env.id, job, since, follow, writer, stats);
            }
            pool.run(env)
        }
        Err(message) => Response::error(None, "?", ErrorKind::Parse, message),
    };
    if !response.is_ok() {
        stats.errors += 1;
    }
    write_response(writer, &response)
}

/// Stream a job's progress: one JSON line per event (flagged
/// `"event":true`), then one closing status line without the flag.
///
/// With `follow`, the loop parks in bounded ticks until the job reaches a
/// terminal state, so a live tail ends by itself when the job completes,
/// is cancelled, or fails (a pool drain also terminates every job and
/// therefore every follower).
fn stream_job_events<W: Write>(
    pool: &ServePool,
    id: Option<u64>,
    job: u64,
    since: u64,
    follow: bool,
    writer: &mut W,
    stats: &mut SessionStats,
) -> io::Result<()> {
    let error = |stats: &mut SessionStats, kind, message: String| {
        stats.errors += 1;
        Response::error(id, "optimize-events", kind, message)
    };
    let Some(runner) = pool.jobs() else {
        let response = error(
            stats,
            ErrorKind::BadRequest,
            "job subsystem disabled (start serve with --max-jobs >= 1)".to_string(),
        );
        return write_response(writer, &response);
    };
    let mut cursor = since as usize;
    loop {
        let Some((events, terminal)) = runner.events(job, cursor, follow, FOLLOW_TICK) else {
            let response = error(stats, ErrorKind::BadRequest, format!("unknown job {job}"));
            return write_response(writer, &response);
        };
        for event in &events {
            writer.write_all(render_job_event(id, job, event).as_bytes())?;
            writer.write_all(b"\n")?;
        }
        if !events.is_empty() {
            writer.flush()?;
        }
        cursor += events.len();
        if terminal || !follow {
            break;
        }
    }
    let report = runner.status(job).expect("a job that produced events has a status");
    let response = Response {
        id,
        op: "optimize-events",
        outcome: Outcome::job_status(&report),
        tier: None,
        cached: false,
        compute_micros: 0,
        queue_micros: 0,
    };
    write_response(writer, &response)
}

fn write_response<W: Write>(writer: &mut W, response: &Response) -> io::Result<()> {
    writer.write_all(response.render().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Transport-layer counters, shared between the reactor (sole writer)
/// and observers (`stats` responses via
/// [`ServePool::set_transport_stats`], [`TcpServer::live_sessions`],
/// tests).
#[derive(Debug, Default)]
pub struct TransportStats {
    accepted: AtomicU64,
    active: AtomicU64,
    shed: AtomicU64,
    timed_out: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    write_buffer_sheds: AtomicU64,
    write_buffered_peak: AtomicU64,
}

impl TransportStats {
    /// A consistent-enough copy of every counter (individually relaxed
    /// loads; the reactor is the only writer).
    pub fn snapshot(&self) -> TransportSnapshot {
        TransportSnapshot {
            connections_accepted: self.accepted.load(Ordering::Relaxed),
            connections_active: self.active.load(Ordering::Relaxed),
            connections_shed: self.shed.load(Ordering::Relaxed),
            connections_timed_out: self.timed_out.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            write_buffer_sheds: self.write_buffer_sheds.load(Ordering::Relaxed),
            write_buffered_peak: self.write_buffered_peak.load(Ordering::Relaxed),
        }
    }
}

/// One point-in-time read of [`TransportStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportSnapshot {
    /// Connections accepted from the listener (admitted or shed).
    pub connections_accepted: u64,
    /// Connections currently owned by the reactor.
    pub connections_active: u64,
    /// Connections refused by admission control (cap reached).
    pub connections_shed: u64,
    /// Connections closed by a deadline: idle or write-stall.
    pub connections_timed_out: u64,
    /// Payload bytes read from client sockets.
    pub bytes_read: u64,
    /// Payload bytes written to client sockets.
    pub bytes_written: u64,
    /// Connections dropped because buffering one more response would
    /// exceed `write_buffer_cap` (the client stopped reading).
    pub write_buffer_sheds: u64,
    /// High-water mark of total pending output across all connections,
    /// in bytes — the reactor's write-memory footprint.
    pub write_buffered_peak: u64,
}

/// The pool-worker → reactor completion channel: finished responses plus
/// a loopback wake byte so `poll(2)` returns promptly instead of waiting
/// out its tick.
struct Completions {
    queue: Mutex<Vec<(u64, Response)>>,
    wake: TcpStream,
}

impl Completions {
    /// Called on a pool worker thread; must stay cheap and non-blocking.
    fn push(&self, token: u64, response: Response) {
        if let Ok(mut queue) = self.queue.lock() {
            queue.push((token, response));
        }
        // One byte per completion; if the loopback buffer is full a wake
        // byte is already pending, so dropping this one loses nothing.
        let _ = (&self.wake).write(&[1u8]);
    }
}

/// A TCP front end over a shared [`ServePool`].
///
/// One reactor thread owns the nonblocking listener and every connection
/// state machine, multiplexed by `poll(2)`; pool workers do the compute
/// and hand responses back through a completion queue. [`TcpServer::stop`]
/// flips a flag and wakes the loop, so teardown completes within about
/// one tick even with clients parked mid-connection.
#[derive(Debug)]
pub struct TcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<TransportStats>,
    /// Connected to the reactor's wake socket; `stop` writes one byte so
    /// the loop notices the flag without waiting out a poll tick.
    wake: TcpStream,
    reactor_thread: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl TcpServer {
    /// Bind `addr` and start the reactor in the background with default
    /// connection hygiene.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn start(pool: Arc<ServePool>, addr: &str) -> io::Result<TcpServer> {
        Self::start_with(pool, addr, ServerConfig::default())
    }

    /// Bind `addr` and start the reactor in the background.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn start_with(
        pool: Arc<ServePool>,
        addr: &str,
        config: ServerConfig,
    ) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        // The self-wake pair: a loopback connection whose read end sits in
        // the reactor's poll set. Workers and `stop` write a byte to make
        // a parked `poll(2)` return immediately.
        let wake_listener = TcpListener::bind("127.0.0.1:0")?;
        let wake_tx = TcpStream::connect(wake_listener.local_addr()?)?;
        let (wake_rx, _) = wake_listener.accept()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let _ = wake_tx.set_nodelay(true);
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(TransportStats::default());
        let _ = pool.set_transport_stats(Arc::clone(&stats));
        let completions =
            Arc::new(Completions { queue: Mutex::new(Vec::new()), wake: wake_tx.try_clone()? });
        let reactor = Reactor {
            pool,
            config,
            stats: Arc::clone(&stats),
            completions,
            shutdown: Arc::clone(&shutdown),
            listener,
            wake_rx,
            conns: HashMap::new(),
            wheel: TimerWheel::new(Duration::from_millis(5), 512),
            next_token: 1,
            serving: 0,
            buffered_total: 0,
        };
        let reactor_thread = std::thread::Builder::new()
            .name("reecc-serve-reactor".to_string())
            .spawn(move || reactor.run())?;
        Ok(TcpServer {
            addr,
            shutdown,
            stats,
            wake: wake_tx,
            reactor_thread: Some(reactor_thread),
        })
    }

    /// The bound address (useful with a `:0` ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently live session count (admitted connections the reactor
    /// still owns, polite sheds mid-goodbye included).
    pub fn live_sessions(&self) -> usize {
        self.stats.active.load(Ordering::Relaxed) as usize
    }

    /// The transport counter block (shared with the `stats` op).
    pub fn stats(&self) -> &Arc<TransportStats> {
        &self.stats
    }

    /// Stop the reactor: flag it, wake it, and join. Every connection is
    /// closed on the way out. Safe to call repeatedly.
    ///
    /// # Errors
    ///
    /// Returns the reactor's I/O error, if it died on one.
    pub fn stop(&mut self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = (&self.wake).write(&[1u8]);
        match self.reactor_thread.take() {
            Some(handle) => handle
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("reactor thread panicked"))),
            None => Ok(()),
        }
    }

    /// Block this thread until the reactor exits (shutdown or I/O
    /// failure); used by `cli serve --addr`.
    ///
    /// # Errors
    ///
    /// Returns the reactor's I/O error, if it died on one.
    pub fn run_forever(mut self) -> io::Result<()> {
        match self.reactor_thread.take() {
            Some(handle) => handle
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("reactor thread panicked"))),
            None => Ok(()),
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        let _ = self.stop();
    }
}

/// Why a connection exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// A normal admitted session.
    Serving,
    /// An over-cap connection kept only long enough to deliver its
    /// one-line `overloaded` shed notice.
    Shedding,
}

/// A request this connection is waiting on (at most one at a time, which
/// keeps responses in request order with no reorder buffer).
enum Active {
    /// Submitted to the worker pool; resolved by the completion queue.
    Pool,
    /// An `optimize-events` stream: drained nonblockingly every tick.
    Events { id: Option<u64>, job: u64, cursor: usize, follow: bool },
    /// An `optimize-result` with `"wait":true`: the job's terminal state
    /// is polled every tick instead of parking a thread.
    ResultWait { id: Option<u64>, job: u64, started: Instant },
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    mode: Mode,
    /// Bytes read but not yet framed into a line.
    rbuf: Vec<u8>,
    /// Prefix of `rbuf` already scanned for a newline.
    scanned: usize,
    /// Complete lines awaiting dispatch (bounded by [`INBOX_MAX`]).
    inbox: VecDeque<String>,
    /// Pending output (bounded by `write_buffer_cap`).
    out: VecDeque<u8>,
    active: Option<Active>,
    last_activity: Instant,
    /// Set while `out` is nonempty: the last instant the socket accepted
    /// bytes (or the enqueue instant); the write-stall clock.
    stalled_since: Option<Instant>,
    /// The client half-closed; serve what was pipelined, then close.
    eof: bool,
    /// A final notice is queued; close once `out` drains.
    closing: bool,
    /// Condemned; reaped at the end of the tick.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, mode: Mode, now: Instant) -> Conn {
        Conn {
            stream,
            mode,
            rbuf: Vec::new(),
            scanned: 0,
            inbox: VecDeque::new(),
            out: VecDeque::new(),
            active: None,
            last_activity: now,
            stalled_since: None,
            eof: false,
            closing: false,
            dead: false,
        }
    }

    /// Whether this connection has nothing left to do and can be closed.
    fn finished(&self) -> bool {
        (self.closing || self.eof)
            && self.out.is_empty()
            && self.inbox.is_empty()
            && self.active.is_none()
    }
}

/// Everything a per-connection operation may touch besides the `Conn`
/// itself; split out so the reactor can hold `&mut` to one connection and
/// to this at the same time (disjoint fields of [`Reactor`]).
struct Ctx<'a> {
    config: &'a ServerConfig,
    stats: &'a TransportStats,
    wheel: &'a mut TimerWheel,
    buffered_total: &'a mut usize,
}

/// Timer-wheel token encoding: connection token × 2, low bit selects the
/// deadline kind (0 = idle, 1 = write stall).
const TIMER_IDLE: u64 = 0;
const TIMER_STALL: u64 = 1;

fn timer_token(conn_token: u64, kind: u64) -> u64 {
    conn_token << 1 | kind
}

/// The event loop: owns the listener, the wake socket, and every
/// connection; everything it does is nonblocking except the `poll(2)`
/// tick itself.
struct Reactor {
    pool: Arc<ServePool>,
    config: ServerConfig,
    stats: Arc<TransportStats>,
    completions: Arc<Completions>,
    shutdown: Arc<AtomicBool>,
    listener: TcpListener,
    wake_rx: TcpStream,
    conns: HashMap<u64, Conn>,
    wheel: TimerWheel,
    /// Monotonic connection tokens; never reused, so a stale completion
    /// or timer entry for a gone connection falls on the floor.
    next_token: u64,
    /// Connections in [`Mode::Serving`] (the admission-control count).
    serving: usize,
    /// Total pending output across all connections, in bytes.
    buffered_total: usize,
}

#[cfg(unix)]
fn raw_fd(socket: &impl std::os::fd::AsRawFd) -> i32 {
    socket.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_socket: &T) -> i32 {
    // Never polled: `sys::poll_fds` reports `Unsupported` first.
    -1
}

/// Would-block comes back as `WouldBlock` on Unix and `TimedOut` on
/// some platforms; treat both as "not ready".
fn is_wouldblock(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

impl Reactor {
    /// Admission slack: beyond `max_connections` the reactor still admits
    /// up to two accept bursts of [`Mode::Shedding`] connections (to say
    /// goodbye politely); past that, storms are hard-closed.
    fn slack_cap(&self) -> usize {
        self.config.max_connections.max(1) + 2 * self.config.accept_burst.max(1)
    }

    fn run(mut self) -> io::Result<()> {
        let tick = self.config.poll_interval.max(Duration::from_millis(1));
        let mut fds: Vec<PollFd> = Vec::new();
        let mut fd_tokens: Vec<u64> = Vec::new();
        let mut due: Vec<u64> = Vec::new();
        while !self.shutdown.load(Ordering::SeqCst) {
            fds.clear();
            fd_tokens.clear();
            let accepting = self.conns.len() < self.slack_cap();
            fds.push(PollFd::new(
                raw_fd(&self.listener),
                if accepting { sys::POLLIN } else { 0 },
            ));
            fds.push(PollFd::new(raw_fd(&self.wake_rx), sys::POLLIN));
            for (&token, conn) in &self.conns {
                let mut events = 0i16;
                if !conn.closing && !conn.eof && conn.inbox.len() < INBOX_MAX {
                    events |= sys::POLLIN;
                }
                if !conn.out.is_empty() {
                    events |= sys::POLLOUT;
                }
                fds.push(PollFd::new(raw_fd(&conn.stream), events));
                fd_tokens.push(token);
            }
            sys::poll_fds(&mut fds, tick)?;
            if fds[1].ready(sys::POLLIN) {
                self.drain_wake();
            }
            self.drain_completions();
            if fds[0].ready(sys::POLLIN) {
                self.accept_burst();
            }
            // Readiness over the snapshot taken before poll: a token that
            // died meanwhile just misses (get_mut returns None).
            {
                let conns = &mut self.conns;
                let mut ctx = Ctx {
                    config: &self.config,
                    stats: &self.stats,
                    wheel: &mut self.wheel,
                    buffered_total: &mut self.buffered_total,
                };
                for (i, &token) in fd_tokens.iter().enumerate() {
                    let pfd = fds[2 + i];
                    let Some(conn) = conns.get_mut(&token) else { continue };
                    if pfd.ready(sys::POLLNVAL) {
                        conn.dead = true;
                        continue;
                    }
                    // On hangup, read anyway: data may still be queued
                    // ahead of the EOF.
                    if pfd.ready(sys::POLLIN | sys::POLLERR | sys::POLLHUP) {
                        read_conn(conn, token, &mut ctx);
                    }
                }
            }
            self.dispatch_all();
            self.poll_actives();
            self.flush_all();
            due.clear();
            self.wheel.collect_due(Instant::now(), &mut due);
            for &entry in &due {
                self.fire_timer(entry);
            }
            self.reap();
        }
        self.teardown();
        Ok(())
    }

    fn drain_wake(&mut self) {
        let mut sink = [0u8; 256];
        loop {
            match (&self.wake_rx).read(&mut sink) {
                Ok(0) => break, // stop() dropped its end mid-teardown
                Ok(_) => continue,
                Err(e) if is_wouldblock(e.kind()) => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn drain_completions(&mut self) {
        let batch: Vec<(u64, Response)> = {
            let mut queue = self.completions.queue.lock().expect("completion queue poisoned");
            std::mem::take(&mut *queue)
        };
        if batch.is_empty() {
            return;
        }
        let conns = &mut self.conns;
        let mut ctx = Ctx {
            config: &self.config,
            stats: &self.stats,
            wheel: &mut self.wheel,
            buffered_total: &mut self.buffered_total,
        };
        for (token, response) in batch {
            let Some(conn) = conns.get_mut(&token) else { continue };
            if matches!(conn.active, Some(Active::Pool)) {
                conn.active = None;
            }
            conn.last_activity = Instant::now();
            enqueue_response(conn, token, &mut ctx, &response);
        }
    }

    fn accept_burst(&mut self) {
        if let Err(_msg) = failpoint::hit("transport.accept") {
            return; // injected accept fault: skip this tick's accepts
        }
        for _ in 0..self.config.accept_burst.max(1) {
            if self.conns.len() >= self.slack_cap() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => self.admit(stream),
                Err(e) if is_wouldblock(e.kind()) => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // EMFILE and friends under storm: back off this tick
                // instead of killing the server.
                Err(_) => break,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        self.stats.accepted.fetch_add(1, Ordering::Relaxed);
        if stream.set_nonblocking(true).is_err() {
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let now = Instant::now();
        let token = self.next_token;
        self.next_token += 1;
        let cap = self.config.max_connections.max(1);
        if self.serving >= cap {
            // Over cap: one polite `overloaded` line through the same
            // bounded write path as any response, then close.
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            let mut conn = Conn::new(stream, Mode::Shedding, now);
            conn.closing = true;
            self.stats.active.fetch_add(1, Ordering::Relaxed);
            self.conns.insert(token, conn);
            let line = Response::error(
                None,
                "?",
                ErrorKind::Overloaded,
                format!("connection limit reached ({cap} live sessions); retry later"),
            )
            .render();
            let mut ctx = Ctx {
                config: &self.config,
                stats: &self.stats,
                wheel: &mut self.wheel,
                buffered_total: &mut self.buffered_total,
            };
            if let Some(conn) = self.conns.get_mut(&token) {
                enqueue_line(conn, token, &mut ctx, &line);
            }
            return;
        }
        self.serving += 1;
        self.stats.active.fetch_add(1, Ordering::Relaxed);
        self.conns.insert(token, Conn::new(stream, Mode::Serving, now));
        self.wheel.schedule(timer_token(token, TIMER_IDLE), now + self.config.idle_timeout);
    }

    fn dispatch_all(&mut self) {
        let tokens: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.active.is_none() && !c.dead && !c.closing && !c.inbox.is_empty())
            .map(|(&t, _)| t)
            .collect();
        let conns = &mut self.conns;
        let mut ctx = Ctx {
            config: &self.config,
            stats: &self.stats,
            wheel: &mut self.wheel,
            buffered_total: &mut self.buffered_total,
        };
        for token in tokens {
            let Some(conn) = conns.get_mut(&token) else { continue };
            dispatch_conn(conn, token, &mut ctx, &self.pool, &self.completions);
        }
    }

    fn poll_actives(&mut self) {
        let tokens: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.dead && !matches!(c.active, None | Some(Active::Pool)))
            .map(|(&t, _)| t)
            .collect();
        let conns = &mut self.conns;
        let mut ctx = Ctx {
            config: &self.config,
            stats: &self.stats,
            wheel: &mut self.wheel,
            buffered_total: &mut self.buffered_total,
        };
        for token in tokens {
            let Some(conn) = conns.get_mut(&token) else { continue };
            poll_active(conn, token, &mut ctx, &self.pool);
        }
    }

    fn flush_all(&mut self) {
        let conns = &mut self.conns;
        let mut ctx = Ctx {
            config: &self.config,
            stats: &self.stats,
            wheel: &mut self.wheel,
            buffered_total: &mut self.buffered_total,
        };
        for conn in conns.values_mut() {
            flush_conn(conn, &mut ctx);
        }
    }

    fn fire_timer(&mut self, entry: u64) {
        let token = entry >> 1;
        let kind = entry & 1;
        let conns = &mut self.conns;
        let wheel = &mut self.wheel;
        let Some(conn) = conns.get_mut(&token) else { return };
        if conn.dead {
            return;
        }
        let now = Instant::now();
        if kind == TIMER_STALL {
            match conn.stalled_since {
                Some(since) if !conn.out.is_empty() => {
                    if now.saturating_duration_since(since) >= self.config.write_timeout {
                        // The client stopped reading; there is no point
                        // queueing a goodbye it will not drain.
                        self.stats.timed_out.fetch_add(1, Ordering::Relaxed);
                        conn.dead = true;
                    } else {
                        wheel.schedule(entry, since + self.config.write_timeout);
                    }
                }
                _ => {} // drained meanwhile; the deadline lapses
            }
            return;
        }
        // Idle: only a quiet connection with nothing in flight is
        // reaped — a job follower or a parked `wait` is not idle.
        if conn.closing || conn.eof {
            return;
        }
        let busy = conn.active.is_some() || !conn.inbox.is_empty() || !conn.out.is_empty();
        let idle_for = now.saturating_duration_since(conn.last_activity);
        if !busy && idle_for >= self.config.idle_timeout {
            self.stats.timed_out.fetch_add(1, Ordering::Relaxed);
            let response = Response::error(
                None,
                "?",
                ErrorKind::DeadlineExceeded,
                format!(
                    "idle for {:?} (limit {:?}); closing session",
                    idle_for, self.config.idle_timeout
                ),
            );
            conn.closing = true;
            let mut ctx = Ctx {
                config: &self.config,
                stats: &self.stats,
                wheel,
                buffered_total: &mut self.buffered_total,
            };
            enqueue_response(conn, token, &mut ctx, &response);
        } else {
            let base = if busy { now } else { conn.last_activity };
            wheel.schedule(entry, base + self.config.idle_timeout);
        }
    }

    fn reap(&mut self) {
        let finished: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.dead || c.finished())
            .map(|(&t, _)| t)
            .collect();
        for token in finished {
            if let Some(conn) = self.conns.remove(&token) {
                self.buffered_total -= conn.out.len();
                if conn.mode == Mode::Serving {
                    self.serving -= 1;
                }
                let _ = conn.stream.shutdown(Shutdown::Both);
                self.stats.active.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    fn teardown(&mut self) {
        for (_, conn) in self.conns.drain() {
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.stats.active.fetch_sub(1, Ordering::Relaxed);
        }
        self.serving = 0;
        self.buffered_total = 0;
    }
}

/// Queue one already-rendered line (plus newline) on a connection's
/// bounded write buffer; sheds the connection if the line does not fit.
fn enqueue_line(conn: &mut Conn, token: u64, ctx: &mut Ctx<'_>, line: &str) {
    if conn.dead {
        return;
    }
    let needed = line.len() + 1;
    let cap = ctx.config.write_buffer_cap.max(1024);
    if conn.out.len() + needed > cap {
        // The client is not draining responses; the buffer bound is the
        // memory contract, so the connection goes, not the bound.
        ctx.stats.write_buffer_sheds.fetch_add(1, Ordering::Relaxed);
        conn.dead = true;
        return;
    }
    let was_empty = conn.out.is_empty();
    conn.out.extend(line.as_bytes().iter().copied());
    conn.out.push_back(b'\n');
    *ctx.buffered_total += needed;
    ctx.stats.write_buffered_peak.fetch_max(*ctx.buffered_total as u64, Ordering::Relaxed);
    if was_empty {
        let now = Instant::now();
        conn.stalled_since = Some(now);
        ctx.wheel.schedule(timer_token(token, TIMER_STALL), now + ctx.config.write_timeout);
    }
}

fn enqueue_response(conn: &mut Conn, token: u64, ctx: &mut Ctx<'_>, response: &Response) {
    enqueue_line(conn, token, ctx, &response.render());
}

/// Drain readable bytes into lines; bounded per tick by [`READ_ROUNDS`]
/// and by the inbox cap.
fn read_conn(conn: &mut Conn, token: u64, ctx: &mut Ctx<'_>) {
    if conn.dead || conn.closing || conn.eof {
        return;
    }
    if failpoint::hit("transport.read").is_err() {
        conn.dead = true;
        return;
    }
    let max_line = ctx.config.max_line_bytes.max(1024);
    let mut chunk = [0u8; 4096];
    for _ in 0..READ_ROUNDS {
        if conn.inbox.len() >= INBOX_MAX {
            break;
        }
        match (&conn.stream).read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => {
                ctx.stats.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
                conn.last_activity = Instant::now();
                conn.rbuf.extend_from_slice(&chunk[..n]);
                // Frame complete lines; scan only bytes not seen before.
                while let Some(at) = conn.rbuf[conn.scanned..].iter().position(|&b| b == b'\n')
                {
                    let nl = conn.scanned + at;
                    let line: Vec<u8> = conn.rbuf.drain(..=nl).collect();
                    conn.scanned = 0;
                    conn.inbox.push_back(String::from_utf8_lossy(&line[..nl]).into_owned());
                }
                conn.scanned = conn.rbuf.len();
                if conn.rbuf.len() > max_line {
                    conn.closing = true;
                    let response = Response::error(
                        None,
                        "?",
                        ErrorKind::Parse,
                        format!(
                            "request line exceeds {max_line} bytes without a newline; \
                             closing session"
                        ),
                    );
                    enqueue_response(conn, token, ctx, &response);
                    return;
                }
            }
            Err(e) if is_wouldblock(e.kind()) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Mid-frame disconnect or reset: nothing to answer.
                conn.dead = true;
                break;
            }
        }
    }
}

/// Pop and route inbox lines until something is in flight (or the inbox
/// is empty). At most one pool/job request per connection is pending at
/// a time; inline job-control ops answer immediately.
fn dispatch_conn(
    conn: &mut Conn,
    token: u64,
    ctx: &mut Ctx<'_>,
    pool: &Arc<ServePool>,
    completions: &Arc<Completions>,
) {
    while conn.active.is_none() && !conn.dead && !conn.closing {
        let Some(line) = conn.inbox.pop_front() else { break };
        if line.trim().is_empty() {
            continue;
        }
        if failpoint::hit("session.read").is_err() {
            conn.dead = true;
            return;
        }
        let env = match parse_request(&line) {
            Ok(env) => env,
            Err(message) => {
                let response = Response::error(None, "?", ErrorKind::Parse, message);
                enqueue_response(conn, token, ctx, &response);
                continue;
            }
        };
        enum Route {
            Events { job: u64, since: u64, follow: bool },
            Wait { job: u64 },
            Inline,
            Pool,
        }
        let route = match &env.request {
            Request::OptimizeEvents { job, since, follow } => {
                Route::Events { job: *job, since: *since, follow: *follow }
            }
            Request::OptimizeResult { job, wait: true } => Route::Wait { job: *job },
            Request::OptimizeSubmit { .. }
            | Request::OptimizeStatus { .. }
            | Request::OptimizeCancel { .. }
            | Request::OptimizeResult { .. } => Route::Inline,
            _ => Route::Pool,
        };
        match route {
            Route::Events { job, since, follow } => {
                conn.active =
                    Some(Active::Events { id: env.id, job, cursor: since as usize, follow });
            }
            Route::Wait { job } => {
                conn.active =
                    Some(Active::ResultWait { id: env.id, job, started: Instant::now() });
            }
            // Job control is registry lookups; answering inline keeps it
            // independent of a full query queue (same rule as pipe mode).
            Route::Inline => {
                let response = pool.run(env);
                enqueue_response(conn, token, ctx, &response);
            }
            Route::Pool => {
                let id = env.id;
                let op = env.request.op_name();
                let cb = Arc::clone(completions);
                match pool.submit_with(env, Box::new(move |response| cb.push(token, response)))
                {
                    Ok(()) => conn.active = Some(Active::Pool),
                    Err(SubmitError::Overloaded { depth }) => {
                        let response = Response::error(
                            id,
                            op,
                            ErrorKind::Overloaded,
                            format!("request queue full (depth {depth}); retry later"),
                        );
                        enqueue_response(conn, token, ctx, &response);
                    }
                    Err(SubmitError::ShuttingDown) => {
                        let response = Response::error(
                            id,
                            op,
                            ErrorKind::Draining,
                            "pool is draining; request not accepted".to_string(),
                        );
                        enqueue_response(conn, token, ctx, &response);
                    }
                }
            }
        }
    }
}

/// Advance a connection's pending job op without blocking: pull whatever
/// `optimize-events` has buffered, or check whether a waited-on job went
/// terminal. Re-arms itself until done.
fn poll_active(conn: &mut Conn, token: u64, ctx: &mut Ctx<'_>, pool: &Arc<ServePool>) {
    let Some(active) = conn.active.take() else { return };
    match active {
        Active::Pool => conn.active = Some(Active::Pool),
        Active::Events { id, job, cursor, follow } => {
            let Some(runner) = pool.jobs() else {
                let response = Response::error(
                    id,
                    "optimize-events",
                    ErrorKind::BadRequest,
                    "job subsystem disabled (start serve with --max-jobs >= 1)".to_string(),
                );
                enqueue_response(conn, token, ctx, &response);
                return;
            };
            let Some((events, terminal)) = runner.events(job, cursor, false, Duration::ZERO)
            else {
                let response = Response::error(
                    id,
                    "optimize-events",
                    ErrorKind::BadRequest,
                    format!("unknown job {job}"),
                );
                enqueue_response(conn, token, ctx, &response);
                return;
            };
            for event in &events {
                enqueue_line(conn, token, ctx, &render_job_event(id, job, event));
                if conn.dead {
                    return; // buffer shed mid-stream
                }
            }
            let cursor = cursor + events.len();
            if terminal || !follow {
                if let Some(report) = runner.status(job) {
                    let response = Response {
                        id,
                        op: "optimize-events",
                        outcome: Outcome::job_status(&report),
                        tier: None,
                        cached: false,
                        compute_micros: 0,
                        queue_micros: 0,
                    };
                    enqueue_response(conn, token, ctx, &response);
                }
            } else {
                conn.active = Some(Active::Events { id, job, cursor, follow });
            }
        }
        Active::ResultWait { id, job, started } => {
            let Some(runner) = pool.jobs() else {
                let response = Response::error(
                    id,
                    "optimize-result",
                    ErrorKind::BadRequest,
                    "job subsystem disabled (start serve with --max-jobs >= 1)".to_string(),
                );
                enqueue_response(conn, token, ctx, &response);
                return;
            };
            let Some(report) = runner.status(job) else {
                let response = Response::error(
                    id,
                    "optimize-result",
                    ErrorKind::BadRequest,
                    format!("unknown job {job}"),
                );
                enqueue_response(conn, token, ctx, &response);
                return;
            };
            let terminal = matches!(report.state, "completed" | "cancelled" | "failed");
            if terminal || started.elapsed() >= RESULT_WAIT_TIMEOUT {
                let response = Response {
                    id,
                    op: "optimize-result",
                    outcome: Outcome::job_result(&report),
                    tier: None,
                    cached: false,
                    compute_micros: 0,
                    queue_micros: 0,
                };
                enqueue_response(conn, token, ctx, &response);
            } else {
                conn.active = Some(Active::ResultWait { id, job, started });
            }
        }
    }
}

/// Write as much pending output as the socket will take; progress resets
/// the stall clock, and a drained `closing`/`eof` connection is condemned
/// (the reap pass closes it).
fn flush_conn(conn: &mut Conn, ctx: &mut Ctx<'_>) {
    if conn.dead {
        return;
    }
    if !conn.out.is_empty() {
        if failpoint::hit("transport.write").is_err() {
            conn.dead = true;
            return;
        }
        loop {
            let (front, _) = conn.out.as_slices();
            if front.is_empty() {
                break;
            }
            match (&conn.stream).write(front) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.out.drain(..n);
                    *ctx.buffered_total -= n;
                    ctx.stats.bytes_written.fetch_add(n as u64, Ordering::Relaxed);
                    let now = Instant::now();
                    conn.stalled_since = Some(now);
                    conn.last_activity = now;
                }
                Err(e) if is_wouldblock(e.kind()) => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
    }
    if conn.out.is_empty() {
        conn.stalled_since = None;
        if conn.closing {
            let _ = conn.stream.shutdown(Shutdown::Write);
            // Discard any request bytes the client pipelined after the
            // goodbye line: closing a socket with unread data makes the
            // kernel send RST, which would destroy the in-flight notice
            // before a polite client could read it.
            let mut scratch = [0u8; 4096];
            while matches!((&conn.stream).read(&mut scratch), Ok(n) if n > 0) {}
            conn.dead = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use crate::protocol::Request;
    use reecc_core::{QueryEngine, SketchParams};
    use reecc_graph::generators::barabasi_albert;
    use std::io::BufReader;

    fn test_pool() -> Arc<ServePool> {
        let g = barabasi_albert(40, 2, 11);
        let engine = QueryEngine::build(
            &g,
            &SketchParams { epsilon: 0.5, seed: 5, ..Default::default() },
        )
        .unwrap();
        Arc::new(ServePool::new(
            Arc::new(engine),
            PoolConfig { threads: 2, queue_depth: 32, ..Default::default() },
        ))
    }

    fn quick_config() -> ServerConfig {
        ServerConfig { poll_interval: Duration::from_millis(10), ..ServerConfig::default() }
    }

    #[test]
    fn pipe_session_reports_answers_and_inline_errors() {
        let pool = test_pool();
        let input = "\n{\"op\":\"ecc\",\"v\":3}\nnot json\n{\"op\":\"res\",\"u\":0,\"v\":5}\n";
        let mut out = Vec::new();
        let stats = serve_pipe(&pool, input.as_bytes(), &mut out).unwrap();
        assert_eq!(stats, SessionStats { requests: 3, errors: 1 });
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "one response per non-blank request line: {text}");
        assert!(lines[0].contains("\"ok\":true") && lines[0].contains("\"op\":\"ecc\""));
        assert!(lines[1].contains("\"ok\":false") && lines[1].contains("\"error\":\"parse\""));
        assert!(lines[2].contains("\"ok\":true") && lines[2].contains("\"op\":\"res\""));
    }

    #[test]
    fn pipe_session_streams_job_events_then_a_status_line() {
        use crate::jobs::JobsConfig;
        use crate::live::LiveEngine;
        let g = barabasi_albert(30, 2, 13);
        let engine = QueryEngine::build(
            &g,
            &SketchParams { epsilon: 0.5, seed: 5, ..Default::default() },
        )
        .unwrap();
        let pool = ServePool::with_live_and_jobs(
            LiveEngine::ephemeral(Arc::new(engine), None),
            PoolConfig { threads: 1, queue_depth: 16, ..Default::default() },
            Some(JobsConfig { max_jobs: 1, queue_depth: 4, job_dir: None }),
        )
        .unwrap();
        // The runner starts empty, so the first submitted job has id 0.
        let input = "{\"op\":\"optimize-submit\",\"optimizer\":\"simple\",\"s\":1,\"k\":2,\
                     \"eps\":0.4,\"threads\":1,\"seed\":7}\n\
                     {\"op\":\"optimize-events\",\"job\":0,\"follow\":true,\"id\":9}\n\
                     {\"op\":\"optimize-events\",\"job\":99}\n";
        let mut out = Vec::new();
        let stats = serve_pipe(&pool, input.as_bytes(), &mut out).unwrap();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.errors, 1, "only the unknown-job probe errors");
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // 1 submit ack + 2 event lines + 1 closing status + 1 unknown-job
        // error.
        assert_eq!(lines.len(), 5, "{text}");
        assert!(lines[0].contains("\"op\":\"optimize-submit\""), "{}", lines[0]);
        assert!(lines[0].contains("\"state\":\"queued\""), "{}", lines[0]);
        for (i, line) in lines[1..3].iter().enumerate() {
            assert!(line.contains("\"event\":true"), "{line}");
            assert!(line.contains(&format!("\"iteration\":{i}")), "{line}");
            assert!(line.contains("\"id\":9"), "id must echo on event lines: {line}");
            assert!(line.contains("\"replayed\":false"), "{line}");
        }
        assert!(
            lines[3].contains("\"state\":\"completed\"") && !lines[3].contains("\"event\""),
            "closing line is a plain status: {}",
            lines[3]
        );
        assert!(
            lines[4].contains("\"ok\":false") && lines[4].contains("unknown job 99"),
            "{}",
            lines[4]
        );
    }

    #[test]
    fn tcp_round_trip_on_ephemeral_port() {
        let pool = test_pool();
        let mut server =
            TcpServer::start_with(Arc::clone(&pool), "127.0.0.1:0", quick_config()).unwrap();
        let addr = server.local_addr();

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut stream = stream;
        writeln!(stream, "{{\"op\":\"ecc\",\"v\":1,\"id\":42}}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true") && line.contains("\"id\":42"), "{line}");
        drop(stream);
        drop(reader);

        server.stop().unwrap();
        // After stop, new connections are no longer accepted (the listener
        // socket is closed when the accept loop returns).
        assert!(pool.served() >= 1);
        let _ = pool.run(crate::protocol::RequestEnvelope {
            id: None,
            deadline_ms: None,
            request: Request::Stats,
        });
    }

    #[test]
    fn tcp_serves_concurrent_clients() {
        let pool = test_pool();
        let server = TcpServer::start(Arc::clone(&pool), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let handles: Vec<_> = (0..4u16)
            .map(|t| {
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut stream = stream;
                    let mut ok = 0;
                    for i in 0..5usize {
                        writeln!(
                            stream,
                            "{{\"op\":\"ecc\",\"v\":{}}}",
                            (t as usize * 7 + i) % 40
                        )
                        .unwrap();
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        if line.contains("\"ok\":true") {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn stop_closes_sessions_that_are_parked_mid_connection() {
        let pool = test_pool();
        let mut server =
            TcpServer::start_with(Arc::clone(&pool), "127.0.0.1:0", quick_config()).unwrap();
        let addr = server.local_addr();

        // A client that connects, speaks once, then parks silently.
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream.try_clone().unwrap();
        writeln!(writer, "{{\"op\":\"ecc\",\"v\":2}}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");
        assert_eq!(server.live_sessions(), 1);

        // stop() must return promptly even though the client never
        // disconnects, and must take the session down with it.
        let started = Instant::now();
        server.stop().unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "stop must not wait for the client: {:?}",
            started.elapsed()
        );
        assert_eq!(server.live_sessions(), 0, "live sessions must be closed by stop");
        // The client's next read observes the close.
        let mut rest = String::new();
        let _ = reader.read_line(&mut rest);
        let eofed = rest.is_empty() || reader.read_line(&mut String::new()).unwrap_or(0) == 0;
        assert!(eofed, "client must see the connection close: {rest:?}");
    }

    #[test]
    fn idle_sessions_are_reaped_by_the_idle_timeout() {
        let pool = test_pool();
        let config = ServerConfig {
            idle_timeout: Duration::from_millis(120),
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        };
        let server = TcpServer::start_with(Arc::clone(&pool), "127.0.0.1:0", config).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = BufReader::new(stream);
        // Send nothing; the server must close us with an in-band notice.
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("deadline-exceeded") && line.contains("idle"),
            "idle close must be announced: {line:?}"
        );
        let mut eof = String::new();
        assert_eq!(reader.read_line(&mut eof).unwrap(), 0, "then the socket closes");
    }

    #[test]
    fn connections_past_the_cap_are_shed_with_an_overloaded_line() {
        let pool = test_pool();
        let config = ServerConfig {
            max_connections: 1,
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        };
        let server = TcpServer::start_with(Arc::clone(&pool), "127.0.0.1:0", config).unwrap();
        let addr = server.local_addr();

        // First client occupies the single slot (and proves it works).
        let first = TcpStream::connect(addr).unwrap();
        let mut first_reader = BufReader::new(first.try_clone().unwrap());
        let mut first_writer = first;
        writeln!(first_writer, "{{\"op\":\"ecc\",\"v\":0}}").unwrap();
        let mut line = String::new();
        first_reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");

        // Second client is shed with a structured error, then closed.
        let second = TcpStream::connect(addr).unwrap();
        second.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut second_reader = BufReader::new(second);
        let mut shed = String::new();
        second_reader.read_line(&mut shed).unwrap();
        assert!(
            shed.contains("\"error\":\"overloaded\"") && shed.contains("connection limit"),
            "{shed:?}"
        );
        let mut eof = String::new();
        assert_eq!(second_reader.read_line(&mut eof).unwrap(), 0);
    }

    #[test]
    fn oversized_request_lines_error_the_session_instead_of_growing_forever() {
        let pool = test_pool();
        let config = ServerConfig {
            max_line_bytes: 1024,
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        };
        let server = TcpServer::start_with(Arc::clone(&pool), "127.0.0.1:0", config).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        // 8 KiB of newline-free garbage.
        let blob = vec![b'x'; 8 * 1024];
        writer.write_all(&blob).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("exceeds") && line.contains("\"error\":\"parse\""), "{line:?}");
    }
}
