//! Transports: newline-delimited JSON over a pipe or a TCP socket.
//!
//! Both transports speak the same protocol (see [`crate::protocol`]): one
//! JSON object per line in, one JSON object per line out, in order. The
//! pipe mode drives a single session over any `BufRead`/`Write` pair
//! (stdin/stdout in the CLI, in-memory buffers in tests); the TCP mode
//! accepts connections on a `std::net::TcpListener` and runs one session
//! thread per client, all submitting into the same bounded [`ServePool`].
//!
//! Transport threads never compute: they parse, submit, and forward. The
//! pool's bounded queue is the only admission control for *work*; the
//! transport adds its own hygiene for *connections* ([`ServerConfig`]):
//!
//! * a connection cap — clients past it get one `overloaded` line and an
//!   immediate close instead of an unbounded thread pile-up;
//! * per-connection read/write timeouts — a stalled client cannot pin a
//!   session thread forever (`idle_timeout`), and a client that stops
//!   reading cannot wedge a writer (`write_timeout`);
//! * a line-length cap — a client streaming bytes without a newline
//!   cannot grow a session buffer without bound;
//! * [`TcpServer::stop`] closes *live sessions* too, not just the accept
//!   loop: every registered connection socket is shut down and every
//!   session thread joined, so stop completes even with clients parked
//!   mid-connection.

use std::collections::HashMap;
use std::io::{self, BufRead, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::failpoint;
use crate::pool::ServePool;
use crate::protocol::{parse_request, render_job_event, ErrorKind, Outcome, Request, Response};

/// How long one `optimize-events` follow tick blocks waiting for a fresh
/// event before re-checking the job's terminal state.
const FOLLOW_TICK: Duration = Duration::from_millis(250);

/// Connection-hygiene knobs for the TCP transport.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Maximum simultaneous sessions; connections beyond it are answered
    /// with one `overloaded` error line and closed (clamped to ≥ 1).
    pub max_connections: usize,
    /// A session whose client sends nothing for this long is closed with
    /// an in-band `deadline-exceeded` notice.
    pub idle_timeout: Duration,
    /// How often a blocked session read wakes up to check the shutdown
    /// flag and the idle clock.
    pub poll_interval: Duration,
    /// Socket write timeout: a client that stops reading its responses
    /// errors the session instead of wedging the thread.
    pub write_timeout: Duration,
    /// Maximum request-line length in bytes; longer lines error the
    /// session (clamped to ≥ 1024).
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            idle_timeout: Duration::from_secs(300),
            poll_interval: Duration::from_millis(50),
            write_timeout: Duration::from_secs(10),
            max_line_bytes: 64 * 1024,
        }
    }
}

/// Counters for one pipe/socket session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Non-blank lines read.
    pub requests: u64,
    /// Responses that carried an error outcome (parse errors included).
    pub errors: u64,
}

/// Serve one newline-delimited JSON session: read a request per line from
/// `reader`, write exactly one response line to `writer`, until EOF.
///
/// Blank lines are skipped; unparseable lines produce a `parse` error
/// response instead of killing the session, so one bad client line never
/// costs the stream.
///
/// # Errors
///
/// Only transport failures (read/write/flush) abort the session; protocol
/// and engine errors are reported in-band.
pub fn serve_pipe<R: BufRead, W: Write>(
    pool: &ServePool,
    reader: R,
    mut writer: W,
) -> io::Result<SessionStats> {
    let mut stats = SessionStats::default();
    for line in reader.lines() {
        let line = line?;
        respond_line(pool, &line, &mut writer, &mut stats)?;
    }
    Ok(stats)
}

/// Parse-submit-answer one request line (shared by both transports).
fn respond_line<W: Write>(
    pool: &ServePool,
    line: &str,
    writer: &mut W,
    stats: &mut SessionStats,
) -> io::Result<()> {
    if line.trim().is_empty() {
        return Ok(());
    }
    stats.requests += 1;
    let response = match parse_request(line) {
        // `optimize-events` is the one op that answers with *multiple*
        // lines: it streams per-iteration progress, then closes with a
        // status line. Both transports funnel through here, so both get
        // streaming.
        Ok(env) => {
            if let Request::OptimizeEvents { job, since, follow } = env.request {
                return stream_job_events(pool, env.id, job, since, follow, writer, stats);
            }
            pool.run(env)
        }
        Err(message) => Response::error(None, "?", ErrorKind::Parse, message),
    };
    if !response.is_ok() {
        stats.errors += 1;
    }
    write_response(writer, &response)
}

/// Stream a job's progress: one JSON line per event (flagged
/// `"event":true`), then one closing status line without the flag.
///
/// With `follow`, the loop parks in bounded ticks until the job reaches a
/// terminal state, so a live tail ends by itself when the job completes,
/// is cancelled, or fails (a pool drain also terminates every job and
/// therefore every follower).
fn stream_job_events<W: Write>(
    pool: &ServePool,
    id: Option<u64>,
    job: u64,
    since: u64,
    follow: bool,
    writer: &mut W,
    stats: &mut SessionStats,
) -> io::Result<()> {
    let error = |stats: &mut SessionStats, kind, message: String| {
        stats.errors += 1;
        Response::error(id, "optimize-events", kind, message)
    };
    let Some(runner) = pool.jobs() else {
        let response = error(
            stats,
            ErrorKind::BadRequest,
            "job subsystem disabled (start serve with --max-jobs >= 1)".to_string(),
        );
        return write_response(writer, &response);
    };
    let mut cursor = since as usize;
    loop {
        let Some((events, terminal)) = runner.events(job, cursor, follow, FOLLOW_TICK) else {
            let response = error(stats, ErrorKind::BadRequest, format!("unknown job {job}"));
            return write_response(writer, &response);
        };
        for event in &events {
            writer.write_all(render_job_event(id, job, event).as_bytes())?;
            writer.write_all(b"\n")?;
        }
        if !events.is_empty() {
            writer.flush()?;
        }
        cursor += events.len();
        if terminal || !follow {
            break;
        }
    }
    let report = runner.status(job).expect("a job that produced events has a status");
    let response = Response {
        id,
        op: "optimize-events",
        outcome: Outcome::job_status(&report),
        tier: None,
        cached: false,
        compute_micros: 0,
        queue_micros: 0,
    };
    write_response(writer, &response)
}

fn write_response<W: Write>(writer: &mut W, response: &Response) -> io::Result<()> {
    writer.write_all(response.render().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Live-session bookkeeping shared between the accept loop, the session
/// threads, and [`TcpServer::stop`].
#[derive(Debug, Default)]
struct SessionRegistry {
    /// Socket clones of live sessions, keyed by a per-server serial; used
    /// by `stop` to force-close parked connections.
    streams: Mutex<HashMap<u64, TcpStream>>,
    /// Session thread handles (never self-joined: sessions only register,
    /// `stop` joins).
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next_id: AtomicU64,
}

impl SessionRegistry {
    fn live(&self) -> usize {
        self.streams.lock().expect("session registry poisoned").len()
    }

    fn register(&self, stream: &TcpStream) -> io::Result<u64> {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let clone = stream.try_clone()?;
        self.streams.lock().expect("session registry poisoned").insert(id, clone);
        Ok(id)
    }

    fn deregister(&self, id: u64) {
        self.streams.lock().expect("session registry poisoned").remove(&id);
    }

    /// Shut down every live connection socket; blocked session reads
    /// return immediately with EOF/error.
    fn close_all(&self) {
        for stream in self.streams.lock().expect("session registry poisoned").values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// A TCP front end over a shared [`ServePool`].
///
/// The accept loop runs on its own thread with a nonblocking listener so
/// [`TcpServer::stop`] takes effect within one poll interval (~25 ms);
/// each accepted connection gets a session thread running the timed
/// session loop.
#[derive(Debug)]
pub struct TcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    registry: Arc<SessionRegistry>,
    accept_thread: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl TcpServer {
    /// Bind `addr` and start accepting in the background with default
    /// connection hygiene.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn start(pool: Arc<ServePool>, addr: &str) -> io::Result<TcpServer> {
        Self::start_with(pool, addr, ServerConfig::default())
    }

    /// Bind `addr` and start accepting in the background.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn start_with(
        pool: Arc<ServePool>,
        addr: &str,
        config: ServerConfig,
    ) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(SessionRegistry::default());
        let flag = Arc::clone(&shutdown);
        let reg = Arc::clone(&registry);
        let accept_thread = std::thread::Builder::new()
            .name("reecc-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &pool, &flag, &reg, config))?;
        Ok(TcpServer { addr, shutdown, registry, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful with a `:0` ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently live session count.
    pub fn live_sessions(&self) -> usize {
        self.registry.live()
    }

    /// Stop accepting, force-close every live session socket, and join
    /// both the accept thread and all session threads. Safe to call
    /// repeatedly.
    ///
    /// # Errors
    ///
    /// Returns the accept loop's I/O error, if it died on one.
    pub fn stop(&mut self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        let accept_result = match self.accept_thread.take() {
            Some(handle) => handle
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("accept thread panicked"))),
            None => Ok(()),
        };
        // With the accept loop gone no new sessions can appear; closing
        // the sockets unblocks any session parked in a read, and joining
        // guarantees their threads are gone before stop returns.
        self.registry.close_all();
        let threads: Vec<_> = {
            let mut guard = self.registry.threads.lock().expect("session registry poisoned");
            guard.drain(..).collect()
        };
        for handle in threads {
            let _ = handle.join();
        }
        accept_result
    }

    /// Block this thread on the accept loop until the process dies or the
    /// loop fails; used by `cli serve --addr`.
    ///
    /// # Errors
    ///
    /// Returns the accept loop's I/O error, if it died on one.
    pub fn run_forever(mut self) -> io::Result<()> {
        match self.accept_thread.take() {
            Some(handle) => handle
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("accept thread panicked"))),
            None => Ok(()),
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        let _ = self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    pool: &Arc<ServePool>,
    shutdown: &Arc<AtomicBool>,
    registry: &Arc<SessionRegistry>,
    config: ServerConfig,
) -> io::Result<()> {
    let max_connections = config.max_connections.max(1);
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if registry.live() >= max_connections {
                    shed_connection(stream, max_connections, config.write_timeout);
                    continue;
                }
                let id = match registry.register(&stream) {
                    Ok(id) => id,
                    Err(_) => continue, // clone failed: drop the connection
                };
                let pool = Arc::clone(pool);
                let reg = Arc::clone(registry);
                let flag = Arc::clone(shutdown);
                let handle = std::thread::Builder::new()
                    .name("reecc-serve-conn".to_string())
                    .spawn(move || {
                    let _ = serve_tcp_session(&pool, stream, &flag, config);
                    reg.deregister(id);
                })?;
                registry.threads.lock().expect("session registry poisoned").push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Answer an over-cap connection with one error line, then close it.
fn shed_connection(stream: TcpStream, cap: usize, write_timeout: Duration) {
    let response = Response::error(
        None,
        "?",
        ErrorKind::Overloaded,
        format!("connection limit reached ({cap} live sessions); retry later"),
    );
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(write_timeout));
    let _ = write_response(&mut stream, &response);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Would-block comes back as `WouldBlock` on Unix and `TimedOut` on
/// Windows; treat both as "no data this tick".
fn is_timeout(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// One TCP session: a hand-rolled line loop over a socket with a read
/// timeout, so the thread periodically observes the server shutdown flag
/// and the idle clock instead of blocking forever on a silent client.
fn serve_tcp_session(
    pool: &ServePool,
    stream: TcpStream,
    shutdown: &AtomicBool,
    config: ServerConfig,
) -> io::Result<SessionStats> {
    // The accepted stream inherits the listener's nonblocking flag on
    // some platforms; sessions want blocking reads with a timeout tick.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(config.poll_interval.max(Duration::from_millis(1))))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    let max_line = config.max_line_bytes.max(1024);
    let mut writer = stream.try_clone()?;
    let mut reader = stream;
    let mut stats = SessionStats::default();
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut last_activity = Instant::now();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(stats); // server stopping: close without ceremony
        }
        if let Err(msg) = failpoint::hit("session.read") {
            return Err(io::Error::other(msg));
        }
        match reader.read(&mut chunk) {
            Ok(0) => return Ok(stats), // EOF: client done
            Ok(n) => {
                last_activity = Instant::now();
                pending.extend_from_slice(&chunk[..n]);
                // Answer every complete line in arrival order.
                while let Some(nl) = pending.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = pending.drain(..=nl).collect();
                    let line = String::from_utf8_lossy(&line[..nl]);
                    respond_line(pool, &line, &mut writer, &mut stats)?;
                }
                if pending.len() > max_line {
                    let response = Response::error(
                        None,
                        "?",
                        ErrorKind::Parse,
                        format!(
                            "request line exceeds {max_line} bytes without a newline; \
                             closing session"
                        ),
                    );
                    stats.errors += 1;
                    let _ = write_response(&mut writer, &response);
                    return Ok(stats);
                }
            }
            Err(e) if is_timeout(e.kind()) => {
                if last_activity.elapsed() >= config.idle_timeout {
                    let response = Response::error(
                        None,
                        "?",
                        ErrorKind::DeadlineExceeded,
                        format!(
                            "idle for {:?} (limit {:?}); closing session",
                            last_activity.elapsed(),
                            config.idle_timeout
                        ),
                    );
                    let _ = write_response(&mut writer, &response);
                    return Ok(stats);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use crate::protocol::Request;
    use reecc_core::{QueryEngine, SketchParams};
    use reecc_graph::generators::barabasi_albert;
    use std::io::BufReader;

    fn test_pool() -> Arc<ServePool> {
        let g = barabasi_albert(40, 2, 11);
        let engine = QueryEngine::build(
            &g,
            &SketchParams { epsilon: 0.5, seed: 5, ..Default::default() },
        )
        .unwrap();
        Arc::new(ServePool::new(
            Arc::new(engine),
            PoolConfig { threads: 2, queue_depth: 32, ..Default::default() },
        ))
    }

    fn quick_config() -> ServerConfig {
        ServerConfig { poll_interval: Duration::from_millis(10), ..ServerConfig::default() }
    }

    #[test]
    fn pipe_session_reports_answers_and_inline_errors() {
        let pool = test_pool();
        let input = "\n{\"op\":\"ecc\",\"v\":3}\nnot json\n{\"op\":\"res\",\"u\":0,\"v\":5}\n";
        let mut out = Vec::new();
        let stats = serve_pipe(&pool, input.as_bytes(), &mut out).unwrap();
        assert_eq!(stats, SessionStats { requests: 3, errors: 1 });
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "one response per non-blank request line: {text}");
        assert!(lines[0].contains("\"ok\":true") && lines[0].contains("\"op\":\"ecc\""));
        assert!(lines[1].contains("\"ok\":false") && lines[1].contains("\"error\":\"parse\""));
        assert!(lines[2].contains("\"ok\":true") && lines[2].contains("\"op\":\"res\""));
    }

    #[test]
    fn pipe_session_streams_job_events_then_a_status_line() {
        use crate::jobs::JobsConfig;
        use crate::live::LiveEngine;
        let g = barabasi_albert(30, 2, 13);
        let engine = QueryEngine::build(
            &g,
            &SketchParams { epsilon: 0.5, seed: 5, ..Default::default() },
        )
        .unwrap();
        let pool = ServePool::with_live_and_jobs(
            LiveEngine::ephemeral(Arc::new(engine), None),
            PoolConfig { threads: 1, queue_depth: 16, ..Default::default() },
            Some(JobsConfig { max_jobs: 1, queue_depth: 4, job_dir: None }),
        )
        .unwrap();
        // The runner starts empty, so the first submitted job has id 0.
        let input = "{\"op\":\"optimize-submit\",\"optimizer\":\"simple\",\"s\":1,\"k\":2,\
                     \"eps\":0.4,\"threads\":1,\"seed\":7}\n\
                     {\"op\":\"optimize-events\",\"job\":0,\"follow\":true,\"id\":9}\n\
                     {\"op\":\"optimize-events\",\"job\":99}\n";
        let mut out = Vec::new();
        let stats = serve_pipe(&pool, input.as_bytes(), &mut out).unwrap();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.errors, 1, "only the unknown-job probe errors");
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // 1 submit ack + 2 event lines + 1 closing status + 1 unknown-job
        // error.
        assert_eq!(lines.len(), 5, "{text}");
        assert!(lines[0].contains("\"op\":\"optimize-submit\""), "{}", lines[0]);
        assert!(lines[0].contains("\"state\":\"queued\""), "{}", lines[0]);
        for (i, line) in lines[1..3].iter().enumerate() {
            assert!(line.contains("\"event\":true"), "{line}");
            assert!(line.contains(&format!("\"iteration\":{i}")), "{line}");
            assert!(line.contains("\"id\":9"), "id must echo on event lines: {line}");
            assert!(line.contains("\"replayed\":false"), "{line}");
        }
        assert!(
            lines[3].contains("\"state\":\"completed\"") && !lines[3].contains("\"event\""),
            "closing line is a plain status: {}",
            lines[3]
        );
        assert!(
            lines[4].contains("\"ok\":false") && lines[4].contains("unknown job 99"),
            "{}",
            lines[4]
        );
    }

    #[test]
    fn tcp_round_trip_on_ephemeral_port() {
        let pool = test_pool();
        let mut server =
            TcpServer::start_with(Arc::clone(&pool), "127.0.0.1:0", quick_config()).unwrap();
        let addr = server.local_addr();

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut stream = stream;
        writeln!(stream, "{{\"op\":\"ecc\",\"v\":1,\"id\":42}}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true") && line.contains("\"id\":42"), "{line}");
        drop(stream);
        drop(reader);

        server.stop().unwrap();
        // After stop, new connections are no longer accepted (the listener
        // socket is closed when the accept loop returns).
        assert!(pool.served() >= 1);
        let _ = pool.run(crate::protocol::RequestEnvelope {
            id: None,
            deadline_ms: None,
            request: Request::Stats,
        });
    }

    #[test]
    fn tcp_serves_concurrent_clients() {
        let pool = test_pool();
        let server = TcpServer::start(Arc::clone(&pool), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let handles: Vec<_> = (0..4u16)
            .map(|t| {
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut stream = stream;
                    let mut ok = 0;
                    for i in 0..5usize {
                        writeln!(
                            stream,
                            "{{\"op\":\"ecc\",\"v\":{}}}",
                            (t as usize * 7 + i) % 40
                        )
                        .unwrap();
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        if line.contains("\"ok\":true") {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn stop_closes_sessions_that_are_parked_mid_connection() {
        let pool = test_pool();
        let mut server =
            TcpServer::start_with(Arc::clone(&pool), "127.0.0.1:0", quick_config()).unwrap();
        let addr = server.local_addr();

        // A client that connects, speaks once, then parks silently.
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream.try_clone().unwrap();
        writeln!(writer, "{{\"op\":\"ecc\",\"v\":2}}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");
        assert_eq!(server.live_sessions(), 1);

        // stop() must return promptly even though the client never
        // disconnects, and must take the session down with it.
        let started = Instant::now();
        server.stop().unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "stop must not wait for the client: {:?}",
            started.elapsed()
        );
        assert_eq!(server.live_sessions(), 0, "live sessions must be closed by stop");
        // The client's next read observes the close.
        let mut rest = String::new();
        let _ = reader.read_line(&mut rest);
        let eofed = rest.is_empty() || reader.read_line(&mut String::new()).unwrap_or(0) == 0;
        assert!(eofed, "client must see the connection close: {rest:?}");
    }

    #[test]
    fn idle_sessions_are_reaped_by_the_idle_timeout() {
        let pool = test_pool();
        let config = ServerConfig {
            idle_timeout: Duration::from_millis(120),
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        };
        let server = TcpServer::start_with(Arc::clone(&pool), "127.0.0.1:0", config).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = BufReader::new(stream);
        // Send nothing; the server must close us with an in-band notice.
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("deadline-exceeded") && line.contains("idle"),
            "idle close must be announced: {line:?}"
        );
        let mut eof = String::new();
        assert_eq!(reader.read_line(&mut eof).unwrap(), 0, "then the socket closes");
    }

    #[test]
    fn connections_past_the_cap_are_shed_with_an_overloaded_line() {
        let pool = test_pool();
        let config = ServerConfig {
            max_connections: 1,
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        };
        let server = TcpServer::start_with(Arc::clone(&pool), "127.0.0.1:0", config).unwrap();
        let addr = server.local_addr();

        // First client occupies the single slot (and proves it works).
        let first = TcpStream::connect(addr).unwrap();
        let mut first_reader = BufReader::new(first.try_clone().unwrap());
        let mut first_writer = first;
        writeln!(first_writer, "{{\"op\":\"ecc\",\"v\":0}}").unwrap();
        let mut line = String::new();
        first_reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");

        // Second client is shed with a structured error, then closed.
        let second = TcpStream::connect(addr).unwrap();
        second.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut second_reader = BufReader::new(second);
        let mut shed = String::new();
        second_reader.read_line(&mut shed).unwrap();
        assert!(
            shed.contains("\"error\":\"overloaded\"") && shed.contains("connection limit"),
            "{shed:?}"
        );
        let mut eof = String::new();
        assert_eq!(second_reader.read_line(&mut eof).unwrap(), 0);
    }

    #[test]
    fn oversized_request_lines_error_the_session_instead_of_growing_forever() {
        let pool = test_pool();
        let config = ServerConfig {
            max_line_bytes: 1024,
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        };
        let server = TcpServer::start_with(Arc::clone(&pool), "127.0.0.1:0", config).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        // 8 KiB of newline-free garbage.
        let blob = vec![b'x'; 8 * 1024];
        writer.write_all(&blob).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("exceeds") && line.contains("\"error\":\"parse\""), "{line:?}");
    }
}
