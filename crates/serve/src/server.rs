//! Transports: newline-delimited JSON over a pipe or a TCP socket.
//!
//! Both transports speak the same protocol (see [`crate::protocol`]): one
//! JSON object per line in, one JSON object per line out, in order. The
//! pipe mode drives a single session over any `BufRead`/`Write` pair
//! (stdin/stdout in the CLI, in-memory buffers in tests); the TCP mode
//! accepts connections on a `std::net::TcpListener` and runs one session
//! thread per client, all submitting into the same bounded [`ServePool`].
//!
//! Transport threads never compute: they parse, submit, and forward. The
//! pool's bounded queue is the only admission control, so a burst of
//! clients degrades to `overloaded` responses rather than OS-level socket
//! backlog growth.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::pool::ServePool;
use crate::protocol::{parse_request, ErrorKind, Response};

/// Counters for one pipe/socket session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Non-blank lines read.
    pub requests: u64,
    /// Responses that carried an error outcome (parse errors included).
    pub errors: u64,
}

/// Serve one newline-delimited JSON session: read a request per line from
/// `reader`, write exactly one response line to `writer`, until EOF.
///
/// Blank lines are skipped; unparseable lines produce a `parse` error
/// response instead of killing the session, so one bad client line never
/// costs the stream.
///
/// # Errors
///
/// Only transport failures (read/write/flush) abort the session; protocol
/// and engine errors are reported in-band.
pub fn serve_pipe<R: BufRead, W: Write>(
    pool: &ServePool,
    reader: R,
    mut writer: W,
) -> io::Result<SessionStats> {
    let mut stats = SessionStats::default();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        stats.requests += 1;
        let response = match parse_request(&line) {
            Ok(env) => pool.run(env),
            Err(message) => Response::error(None, "?", ErrorKind::Parse, message),
        };
        if !response.is_ok() {
            stats.errors += 1;
        }
        writer.write_all(response.render().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(stats)
}

/// A TCP front end over a shared [`ServePool`].
///
/// The accept loop runs on its own thread with a nonblocking listener so
/// [`TcpServer::stop`] takes effect within one poll interval (~25 ms);
/// each accepted connection gets a session thread running [`serve_pipe`].
#[derive(Debug)]
pub struct TcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl TcpServer {
    /// Bind `addr` and start accepting in the background.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn start(pool: Arc<ServePool>, addr: &str) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("reecc-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &pool, &flag))?;
        Ok(TcpServer { addr, shutdown, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful with a `:0` ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread. Already-accepted
    /// sessions run to completion on their own threads.
    ///
    /// # Errors
    ///
    /// Returns the accept loop's I/O error, if it died on one.
    pub fn stop(&mut self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        match self.accept_thread.take() {
            Some(handle) => handle
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("accept thread panicked"))),
            None => Ok(()),
        }
    }

    /// Block this thread on the accept loop until the process dies or the
    /// loop fails; used by `cli serve --addr`.
    ///
    /// # Errors
    ///
    /// Returns the accept loop's I/O error, if it died on one.
    pub fn run_forever(mut self) -> io::Result<()> {
        match self.accept_thread.take() {
            Some(handle) => handle
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("accept thread panicked"))),
            None => Ok(()),
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        let _ = self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    pool: &Arc<ServePool>,
    shutdown: &Arc<AtomicBool>,
) -> io::Result<()> {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let pool = Arc::clone(pool);
                std::thread::Builder::new().name("reecc-serve-conn".to_string()).spawn(
                    move || {
                        let _ = handle_connection(&pool, stream);
                    },
                )?;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn handle_connection(pool: &ServePool, stream: TcpStream) -> io::Result<SessionStats> {
    // The accepted stream inherits the listener's nonblocking flag on some
    // platforms; sessions want plain blocking reads.
    stream.set_nonblocking(false)?;
    let reader = BufReader::new(stream.try_clone()?);
    serve_pipe(pool, reader, stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use crate::protocol::Request;
    use reecc_core::{QueryEngine, SketchParams};
    use reecc_graph::generators::barabasi_albert;

    fn test_pool() -> Arc<ServePool> {
        let g = barabasi_albert(40, 2, 11);
        let engine = QueryEngine::build(
            &g,
            &SketchParams { epsilon: 0.5, seed: 5, ..Default::default() },
        )
        .unwrap();
        Arc::new(ServePool::new(
            Arc::new(engine),
            PoolConfig { threads: 2, queue_depth: 32, ..Default::default() },
        ))
    }

    #[test]
    fn pipe_session_reports_answers_and_inline_errors() {
        let pool = test_pool();
        let input = "\n{\"op\":\"ecc\",\"v\":3}\nnot json\n{\"op\":\"res\",\"u\":0,\"v\":5}\n";
        let mut out = Vec::new();
        let stats = serve_pipe(&pool, input.as_bytes(), &mut out).unwrap();
        assert_eq!(stats, SessionStats { requests: 3, errors: 1 });
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "one response per non-blank request line: {text}");
        assert!(lines[0].contains("\"ok\":true") && lines[0].contains("\"op\":\"ecc\""));
        assert!(lines[1].contains("\"ok\":false") && lines[1].contains("\"error\":\"parse\""));
        assert!(lines[2].contains("\"ok\":true") && lines[2].contains("\"op\":\"res\""));
    }

    #[test]
    fn tcp_round_trip_on_ephemeral_port() {
        let pool = test_pool();
        let mut server = TcpServer::start(Arc::clone(&pool), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut stream = stream;
        writeln!(stream, "{{\"op\":\"ecc\",\"v\":1,\"id\":42}}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true") && line.contains("\"id\":42"), "{line}");
        drop(stream);
        drop(reader);

        server.stop().unwrap();
        // After stop, new connections are no longer accepted (the listener
        // socket is closed when the accept loop returns).
        assert!(pool.served() >= 1);
        let _ = pool.run(crate::protocol::RequestEnvelope {
            id: None,
            deadline_ms: None,
            request: Request::Stats,
        });
    }

    #[test]
    fn tcp_serves_concurrent_clients() {
        let pool = test_pool();
        let server = TcpServer::start(Arc::clone(&pool), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let handles: Vec<_> = (0..4u16)
            .map(|t| {
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut stream = stream;
                    let mut ok = 0;
                    for i in 0..5usize {
                        writeln!(
                            stream,
                            "{{\"op\":\"ecc\",\"v\":{}}}",
                            (t as usize * 7 + i) % 40
                        )
                        .unwrap();
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        if line.contains("\"ok\":true") {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 20);
    }
}
