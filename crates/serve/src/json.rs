//! A minimal JSON value parser and printer.
//!
//! The workspace builds offline (no serde), and the serve protocol needs
//! only the plain JSON value grammar: objects, arrays, strings with the
//! standard escapes, `f64` numbers, booleans, and null. This module
//! implements exactly that, with byte offsets in every parse error so a
//! malformed request line can be diagnosed from the wire.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key–value list (duplicate keys keep the
    /// first occurrence on lookup).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the offending byte offset.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that is one
    /// (rejects fractional, negative, and unsafely large values).
    pub fn as_usize(&self) -> Option<usize> {
        let x = self.as_f64()?;
        if x.fract() != 0.0 || !(0.0..=9.007_199_254_740_992e15).contains(&x) {
            return None;
        }
        Some(x as usize)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render to compact JSON text (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => render_number(*x, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Render a number the way JSON expects: integers without a fraction,
/// everything else in Rust's shortest-roundtrip form. Non-finite values
/// (which JSON cannot express) degrade to `null`.
fn render_number(x: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !x.is_finite() {
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: read the low half if present.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xd800) << 10)
                                        + (low.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (input came from &str,
                    // so boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8 in string"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            offset: start,
            message: format!("invalid number {text:?}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_grammar() {
        let v = Json::parse(r#"{"op":"ecc","v":17}"#).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("ecc"));
        assert_eq!(v.get("v").unwrap().as_usize(), Some(17));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_scalars_arrays_and_nesting() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        let v = Json::parse(r#"{"a":[1,2,{"b":false}],"c":""}"#).unwrap();
        match v.get("a").unwrap() {
            Json::Arr(items) => assert_eq!(items.len(), 3),
            other => panic!("{other:?}"),
        }
        assert_eq!(v.get("c").unwrap().as_str(), Some(""));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Json::parse(r#""line\nquote\" back\\ tab\t uA""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nquote\" back\\ tab\t uA"));
        let rendered = Json::Str("a\"b\\c\nd\u{1}".to_string()).render();
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some("a\"b\\c\nd\u{1}"));
    }

    #[test]
    fn surrogate_pair_decodes() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_input_with_offsets() {
        for bad in ["", "{", "{\"a\"}", "[1,]", "tru", "\"unterminated", "1 2", "{\"a\":}"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.offset <= bad.len(), "{bad:?}: {err}");
        }
    }

    #[test]
    fn as_usize_is_strict() {
        assert_eq!(Json::parse("3").unwrap().as_usize(), Some(3));
        assert_eq!(Json::parse("3.5").unwrap().as_usize(), None);
        assert_eq!(Json::parse("-1").unwrap().as_usize(), None);
        assert_eq!(Json::parse("\"3\"").unwrap().as_usize(), None);
    }

    #[test]
    fn render_is_parseable_and_compact() {
        let v = Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("value".into(), Json::Num(1.25)),
            ("n".into(), Json::Num(7.0)),
            ("items".into(), Json::Arr(vec![Json::Null, Json::Str("x".into())])),
        ]);
        let text = v.render();
        assert_eq!(text, r#"{"ok":true,"value":1.25,"n":7,"items":[null,"x"]}"#);
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn duplicate_keys_keep_first_on_lookup() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.0));
    }
}
