//! A hand-rolled worker thread pool around `Arc<QueryEngine>`.
//!
//! `std::thread` workers pull jobs from one bounded `mpsc::sync_channel`;
//! the queue depth is the backpressure contract: when it is full,
//! [`ServePool::submit`] returns [`SubmitError::Overloaded`] *immediately*
//! instead of blocking the accepting thread — a loaded server degrades to
//! fast explicit rejections, never to unbounded latency.
//!
//! Each job carries its enqueue time and an optional deadline; a worker
//! that dequeues an already-expired job answers `deadline-exceeded`
//! without touching the engine. Answers to pure queries are memoized in a
//! sharded LRU cache keyed on (graph fingerprint, query), so hot keys cost
//! one lock and one hash after the first computation.
//!
//! The degradation tier is decided once per pool from the sketch's build
//! diagnostics, mirroring `fast_query_with_policy`: a sketch with too many
//! degraded rows is not trusted to drive the hull shortcut, and every
//! eccentricity query falls back to the full `O(n·d)` scan — reported on
//! the wire as `"tier":"approx"`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use reecc_core::{DegradationPolicy, QueryEngine, QueryTier};
use reecc_graph::{fingerprint, Edge};

use crate::cache::{CacheKey, CachedAnswer, ShardedLru};
use crate::protocol::{ErrorKind, Outcome, Request, RequestEnvelope, Response, StatsReport};

/// Pool sizing and behavior knobs.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Worker threads; `0` = use available parallelism (min 2).
    pub threads: usize,
    /// Bounded queue depth; submissions beyond it are rejected with
    /// `overloaded` (clamped to at least 1).
    pub queue_depth: usize,
    /// Total result-cache capacity in entries.
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            threads: 4,
            queue_depth: 256,
            cache_capacity: 4096,
            cache_shards: 8,
            default_deadline: None,
        }
    }
}

/// Why a submission was rejected at the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full.
    Overloaded {
        /// The configured depth, for the error message.
        depth: usize,
    },
    /// The pool has been shut down.
    ShuttingDown,
}

struct Job {
    env: RequestEnvelope,
    enqueued: Instant,
    deadline: Option<Instant>,
    reply: Sender<Response>,
}

struct Shared {
    engine: Arc<QueryEngine>,
    fingerprint: u64,
    cache: ShardedLru,
    tier: QueryTier,
    served: AtomicU64,
    threads: usize,
    queue_depth: usize,
}

/// The serving pool: workers, bounded queue, shared cache.
pub struct ServePool {
    tx: Option<SyncSender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    shared: Arc<Shared>,
    default_deadline: Option<Duration>,
}

impl std::fmt::Debug for ServePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServePool")
            .field("threads", &self.shared.threads)
            .field("queue_depth", &self.shared.queue_depth)
            .field("served", &self.shared.served.load(Ordering::Relaxed))
            .finish()
    }
}

impl ServePool {
    /// Spin up the workers for `engine`.
    pub fn new(engine: Arc<QueryEngine>, config: PoolConfig) -> Self {
        let threads = if config.threads == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(2).max(2)
        } else {
            config.threads
        };
        let queue_depth = config.queue_depth.max(1);
        // Mirror fast_query's hull-trust policy: a sketch with too many
        // degraded rows answers by full scan instead of the hull.
        let policy = DegradationPolicy::default();
        let frac = engine.sketch().diagnostics().unconverged_fraction();
        let tier = if frac > policy.max_unconverged_fraction {
            QueryTier::Approx
        } else {
            QueryTier::Fast
        };
        let shared = Arc::new(Shared {
            fingerprint: fingerprint(engine.graph()),
            cache: ShardedLru::new(config.cache_capacity, config.cache_shards),
            tier,
            served: AtomicU64::new(0),
            threads,
            queue_depth,
            engine,
        });
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let default_deadline = config.default_deadline;
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("reecc-serve-{i}"))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawn serve worker")
            })
            .collect();
        ServePool { tx: Some(tx), workers, shared, default_deadline }
    }

    /// The pool's tier for eccentricity answers, as a wire string.
    pub fn tier_name(&self) -> &'static str {
        tier_name(self.shared.tier)
    }

    /// Enqueue a request without blocking. On success the response arrives
    /// on the returned channel exactly once.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the bounded queue is full;
    /// [`SubmitError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, env: RequestEnvelope) -> Result<Receiver<Response>, SubmitError> {
        let Some(tx) = &self.tx else {
            return Err(SubmitError::ShuttingDown);
        };
        let (reply_tx, reply_rx) = mpsc::channel();
        let now = Instant::now();
        let deadline = match env.deadline_ms {
            Some(ms) => Some(now + Duration::from_millis(ms)),
            None => self.default_deadline.map(|d| now + d),
        };
        let job = Job { env, enqueued: now, deadline, reply: reply_tx };
        match tx.try_send(job) {
            Ok(()) => Ok(reply_rx),
            Err(TrySendError::Full(_)) => {
                Err(SubmitError::Overloaded { depth: self.shared.queue_depth })
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Submit and wait for the answer, mapping every rejection to an error
    /// [`Response`] so callers always get one line per request.
    pub fn run(&self, env: RequestEnvelope) -> Response {
        let id = env.id;
        let op = env.request.op_name();
        match self.submit(env) {
            Ok(rx) => rx.recv().unwrap_or_else(|_| {
                Response::error(
                    id,
                    op,
                    ErrorKind::Internal,
                    "worker dropped the request (pool shutting down?)".to_string(),
                )
            }),
            Err(SubmitError::Overloaded { depth }) => Response::error(
                id,
                op,
                ErrorKind::Overloaded,
                format!("request queue full (depth {depth}); retry later"),
            ),
            Err(SubmitError::ShuttingDown) => Response::error(
                id,
                op,
                ErrorKind::Internal,
                "pool is shutting down".to_string(),
            ),
        }
    }

    /// Requests answered so far (any outcome).
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// The engine's graph fingerprint.
    pub fn graph_fingerprint(&self) -> u64 {
        self.shared.fingerprint
    }
}

impl Drop for ServePool {
    fn drop(&mut self) {
        // Closing the channel wakes every worker out of recv; join so no
        // in-flight reply is lost.
        drop(self.tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn tier_name(tier: QueryTier) -> &'static str {
    match tier {
        QueryTier::Fast => "fast",
        QueryTier::Approx => "approx",
        QueryTier::Exact => "exact",
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>, shared: &Shared) {
    loop {
        // Hold the lock only for the blocking recv; execution runs
        // unlocked so workers overlap on distinct jobs.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else {
            return; // channel closed: shutdown
        };
        let started = Instant::now();
        let queue_micros = started.duration_since(job.enqueued).as_micros() as u64;
        let response = if job.deadline.is_some_and(|d| started > d) {
            Response::error(
                job.env.id,
                job.env.request.op_name(),
                ErrorKind::DeadlineExceeded,
                format!("deadline expired after {queue_micros}us in queue"),
            )
        } else {
            let (outcome, cached) = execute(shared, job.env.request);
            let tier =
                if matches!(outcome, Outcome::Error { .. }) { None } else { Some(shared.tier) };
            Response {
                id: job.env.id,
                op: job.env.request.op_name(),
                outcome,
                tier: tier.map(tier_name),
                cached,
                compute_micros: started.elapsed().as_micros() as u64,
                queue_micros,
            }
        };
        shared.served.fetch_add(1, Ordering::Relaxed);
        // A disappeared client is not an error; drop the reply.
        let _ = job.reply.send(response);
    }
}

fn ecc_answer(shared: &Shared, v: usize) -> CachedAnswer {
    let ans = match shared.tier {
        QueryTier::Fast => shared.engine.eccentricity(v),
        _ => shared.engine.eccentricity_full_scan(v),
    };
    CachedAnswer { value: ans.value, node: ans.farthest }
}

/// Run one validated-or-rejected operation, consulting the cache first.
fn execute(shared: &Shared, request: Request) -> (Outcome, bool) {
    let n = shared.engine.graph().node_count();
    let fp = shared.fingerprint;
    let bad =
        |message: String| (Outcome::Error { kind: ErrorKind::BadRequest, message }, false);
    let check = |node: usize, name: &str| -> Option<String> {
        (node >= n).then(|| format!("{name} = {node} out of range (graph has {n} nodes)"))
    };
    match request {
        Request::Ecc { v } => {
            if let Some(msg) = check(v, "v") {
                return bad(msg);
            }
            let key = CacheKey::Ecc(fp, v);
            if let Some(hit) = shared.cache.get(&key) {
                return (Outcome::Ecc { value: hit.value, node: hit.node }, true);
            }
            let ans = ecc_answer(shared, v);
            shared.cache.insert(key, ans);
            (Outcome::Ecc { value: ans.value, node: ans.node }, false)
        }
        Request::Res { u, v } => {
            if let Some(msg) = check(u, "u").or_else(|| check(v, "v")) {
                return bad(msg);
            }
            let (a, b) = if u <= v { (u, v) } else { (v, u) };
            let key = CacheKey::Res(fp, a, b);
            if let Some(hit) = shared.cache.get(&key) {
                return (Outcome::Scalar { value: hit.value }, true);
            }
            let value = shared.engine.resistance(a, b);
            shared.cache.insert(key, CachedAnswer { value, node: 0 });
            (Outcome::Scalar { value }, false)
        }
        Request::Radius | Request::Diameter => {
            let key = match request {
                Request::Radius => CacheKey::Radius(fp),
                _ => CacheKey::Diameter(fp),
            };
            if let Some(hit) = shared.cache.get(&key) {
                return (Outcome::Ecc { value: hit.value, node: hit.node }, true);
            }
            // One full sweep computes both extremes; cache both so the
            // sibling query is a hit.
            let mut min = CachedAnswer { value: f64::INFINITY, node: 0 };
            let mut max = CachedAnswer { value: f64::NEG_INFINITY, node: 0 };
            for v in 0..n {
                let ans = ecc_answer(shared, v);
                if ans.value < min.value {
                    min = CachedAnswer { value: ans.value, node: v };
                }
                if ans.value > max.value {
                    max = CachedAnswer { value: ans.value, node: v };
                }
            }
            shared.cache.insert(CacheKey::Radius(fp), min);
            shared.cache.insert(CacheKey::Diameter(fp), max);
            let chosen = if matches!(request, Request::Radius) { min } else { max };
            (Outcome::Ecc { value: chosen.value, node: chosen.node }, false)
        }
        Request::WhatIfEdge { s, u, v } => {
            if let Some(msg) = check(s, "s").or_else(|| check(u, "u")).or_else(|| check(v, "v"))
            {
                return bad(msg);
            }
            if u == v {
                return bad(format!("whatif-edge needs two distinct endpoints, got {u} twice"));
            }
            let (a, b) = if u <= v { (u, v) } else { (v, u) };
            let key = CacheKey::WhatIf(fp, s, a, b);
            if let Some(hit) = shared.cache.get(&key) {
                return (Outcome::Ecc { value: hit.value, node: hit.node }, true);
            }
            let ans = shared.engine.eccentricity_after_edge(s, Edge::new(a, b));
            let cached = CachedAnswer { value: ans.value, node: ans.farthest };
            shared.cache.insert(key, cached);
            (Outcome::Ecc { value: cached.value, node: cached.node }, false)
        }
        Request::Stats => {
            let cache = shared.cache.stats();
            let sketch = shared.engine.sketch();
            let diag = sketch.diagnostics();
            (
                Outcome::Stats(StatsReport {
                    nodes: n,
                    edges: shared.engine.graph().edge_count(),
                    fingerprint: fp,
                    epsilon: sketch.epsilon(),
                    dimension: sketch.dimension(),
                    hull_size: shared.engine.hull_size(),
                    degraded_rows: diag.unconverged.len() + diag.dropped.len(),
                    tier: tier_name(shared.tier),
                    threads: shared.threads,
                    queue_depth: shared.queue_depth,
                    served: shared.served.load(Ordering::Relaxed),
                    cache_hits: cache.hits,
                    cache_misses: cache.misses,
                    cache_evictions: cache.evictions,
                    cache_entries: cache.entries,
                }),
                false,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reecc_core::SketchParams;
    use reecc_graph::generators::barabasi_albert;

    fn pool(threads: usize, queue_depth: usize) -> ServePool {
        let g = barabasi_albert(40, 2, 9);
        let engine = QueryEngine::build(
            &g,
            &SketchParams { epsilon: 0.5, seed: 3, ..Default::default() },
        )
        .unwrap();
        ServePool::new(
            Arc::new(engine),
            PoolConfig { threads, queue_depth, ..Default::default() },
        )
    }

    fn env(request: Request) -> RequestEnvelope {
        RequestEnvelope { id: None, deadline_ms: None, request }
    }

    #[test]
    fn answers_each_op_and_caches_repeats() {
        let p = pool(2, 16);
        let first = p.run(env(Request::Ecc { v: 5 }));
        assert!(first.is_ok(), "{first:?}");
        assert!(!first.cached);
        assert_eq!(first.tier, Some("fast"));
        let again = p.run(env(Request::Ecc { v: 5 }));
        assert!(again.cached, "{again:?}");
        assert_eq!(again.outcome, first.outcome);

        let res = p.run(env(Request::Res { u: 0, v: 7 }));
        let res_flipped = p.run(env(Request::Res { u: 7, v: 0 }));
        assert!(res_flipped.cached, "endpoint order must normalize: {res_flipped:?}");
        assert_eq!(res.outcome, res_flipped.outcome);

        let radius = p.run(env(Request::Radius));
        let diameter = p.run(env(Request::Diameter));
        assert!(diameter.cached, "radius sweep must have cached the diameter");
        match (&radius.outcome, &diameter.outcome) {
            (Outcome::Ecc { value: r, .. }, Outcome::Ecc { value: d, .. }) => {
                assert!(r <= d, "radius {r} must not exceed diameter {d}");
            }
            other => panic!("{other:?}"),
        }

        let whatif = p.run(env(Request::WhatIfEdge { s: 5, u: 0, v: 39 }));
        assert!(whatif.is_ok(), "{whatif:?}");

        let stats = p.run(env(Request::Stats));
        match stats.outcome {
            Outcome::Stats(s) => {
                assert_eq!(s.nodes, 40);
                assert_eq!(s.threads, 2);
                assert!(s.cache_hits >= 3, "{s:?}");
                assert!(s.served >= 6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn invalid_arguments_are_bad_requests_not_panics() {
        let p = pool(1, 8);
        for request in [
            Request::Ecc { v: 400 },
            Request::Res { u: 0, v: 400 },
            Request::WhatIfEdge { s: 400, u: 0, v: 1 },
            Request::WhatIfEdge { s: 0, u: 3, v: 3 },
        ] {
            let resp = p.run(env(request));
            match resp.outcome {
                Outcome::Error { kind, .. } => assert_eq!(kind, ErrorKind::BadRequest),
                other => panic!("{request:?} -> {other:?}"),
            }
        }
    }

    #[test]
    fn full_queue_rejects_with_overloaded_instead_of_blocking() {
        let p = pool(1, 1);
        // Occupy the single worker with a full radius sweep, then flood.
        let busy = p.submit(env(Request::Radius)).unwrap();
        let mut outcomes = Vec::new();
        for v in 0..12 {
            outcomes.push(p.submit(env(Request::Ecc { v })));
        }
        let overloaded = outcomes
            .iter()
            .filter(|r| matches!(r, Err(SubmitError::Overloaded { .. })))
            .count();
        assert!(overloaded >= 1, "flooding a depth-1 queue must overload: {outcomes:?}");
        // Accepted requests still complete.
        for rx in outcomes.into_iter().flatten() {
            assert!(rx.recv().unwrap().is_ok());
        }
        assert!(busy.recv().unwrap().is_ok());
    }

    #[test]
    fn expired_deadline_is_reported_not_computed() {
        let p = pool(1, 4);
        // Keep the worker busy so the dated request waits in queue past
        // its 0 ms deadline.
        let busy = p.submit(env(Request::Radius)).unwrap();
        let dated = p
            .submit(RequestEnvelope {
                id: Some(7),
                deadline_ms: Some(0),
                request: Request::Ecc { v: 1 },
            })
            .unwrap();
        let resp = dated.recv().unwrap();
        match resp.outcome {
            Outcome::Error { kind, .. } => {
                assert_eq!(kind, ErrorKind::DeadlineExceeded);
                assert_eq!(resp.id, Some(7));
            }
            other => panic!("{other:?}"),
        }
        assert!(busy.recv().unwrap().is_ok());
    }

    #[test]
    fn concurrent_submitters_all_get_answers() {
        let p = Arc::new(pool(4, 64));
        let handles: Vec<_> = (0..4usize)
            .map(|t| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    let mut ok = 0;
                    for i in 0..20 {
                        let resp = p.run(env(Request::Ecc { v: (t * 10 + i) % 40 }));
                        if resp.is_ok() {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 80, "large queue + run() must answer everything");
        assert_eq!(p.served(), 80);
    }
}
