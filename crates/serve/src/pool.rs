//! A hand-rolled, panic-contained worker thread pool around
//! `Arc<QueryEngine>`.
//!
//! `std::thread` workers pull jobs from one bounded `mpsc::sync_channel`;
//! the queue depth is the backpressure contract: when it is full,
//! [`ServePool::submit`] returns [`SubmitError::Overloaded`] *immediately*
//! instead of blocking the accepting thread — a loaded server degrades to
//! fast explicit rejections, never to unbounded latency.
//!
//! Each job carries its enqueue time and an optional deadline; a worker
//! that dequeues an already-expired job answers `deadline-exceeded`
//! without touching the engine. Answers to pure queries are memoized in a
//! sharded LRU cache keyed on (graph fingerprint, query), so hot keys cost
//! one lock and one hash after the first computation.
//!
//! # Supervision
//!
//! Every job runs inside `catch_unwind`: a panic in engine code (or an
//! armed `worker.compute` failpoint) is converted into a structured
//! `internal` error response for the in-flight request instead of a hung
//! client. The panicked worker thread then *exits* — its stack and any
//! half-mutated thread-locals are discarded — and a supervisor thread
//! respawns a fresh replacement, recording both events in the pool
//! counters (`panics_total`, `workers_respawned`). The pool therefore
//! keeps its configured parallelism through arbitrarily many panics.
//!
//! # Graceful drain
//!
//! [`ServePool::drain`] stops admissions, lets workers finish queued work
//! until a deadline, and answers every job still queued past the deadline
//! with a `draining` error (counted in `dropped_on_drain`). The returned
//! [`DrainReport`] accounts for every accepted request:
//! `answered + dropped == submitted`.
//!
//! The degradation tier is decided per epoch view (see [`crate::live`]),
//! mirroring `fast_query_with_policy`: a freshly built sketch with too
//! many degraded rows — or any sketch that has absorbed rank-1 mutations
//! since its hull was computed — is not trusted to drive the hull
//! shortcut, and every eccentricity query falls back to the full
//! `O(n·d)` scan, reported on the wire as `"tier":"approx"`. A completed
//! re-sketch restores `"fast"`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

use reecc_core::{CoreError, QueryEngine, QueryTier, WhatIfScratch};
use reecc_graph::Edge;

use crate::cache::{CacheKey, CachedAnswer, ShardedLru};
use crate::failpoint;
use crate::jobs::{JobRunner, JobSubmitError, JobsConfig};
use crate::live::{EpochView, LiveEngine, LiveError};
use crate::protocol::{ErrorKind, Outcome, Request, RequestEnvelope, Response, StatsReport};
use crate::wal::WalOp;

/// How long `optimize-result` with `"wait":true` is willing to park the
/// calling session thread before answering with the job's current
/// (possibly still non-terminal) state.
const JOB_WAIT_TIMEOUT: Duration = Duration::from_secs(3600);

/// Pool sizing and behavior knobs.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Worker threads; `0` = use available parallelism (min 2).
    pub threads: usize,
    /// Bounded queue depth; submissions beyond it are rejected with
    /// `overloaded` (clamped to at least 1).
    pub queue_depth: usize,
    /// Total result-cache capacity in entries.
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Transient-error retries it took to load the snapshot this pool
    /// serves (0 when built fresh); surfaced in `stats` for observability.
    pub snapshot_retries: u64,
    /// Request-coalescing window (`--batch-window`): when a worker
    /// dequeues an eccentricity-family request (`ecc` / `radius` /
    /// `diameter`), it opportunistically drains up to this many queued
    /// requests of the same family and answers them with **one** batched
    /// panel sweep ([`QueryEngine::eccentricity_batch`]). `1` disables
    /// coalescing (clamped to at least 1). Per-request deadlines, cache
    /// keys, and reply ordering are preserved; answers are bitwise
    /// identical to the scalar path.
    pub batch_window: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            threads: 4,
            queue_depth: 256,
            cache_capacity: 4096,
            cache_shards: 8,
            default_deadline: None,
            snapshot_retries: 0,
            batch_window: 8,
        }
    }
}

/// Why a submission was rejected at the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full.
    Overloaded {
        /// The configured depth, for the error message.
        depth: usize,
    },
    /// The pool has been shut down or is draining.
    ShuttingDown,
}

/// The final accounting returned by [`ServePool::drain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests accepted by [`ServePool::submit`] over the pool's life.
    pub submitted: u64,
    /// Requests that received a computed (or error) response before the
    /// drain deadline.
    pub answered: u64,
    /// Requests answered with a `draining` error because the deadline
    /// passed while they were still queued.
    pub dropped: u64,
    /// Worker panics contained over the pool's life.
    pub panics: u64,
    /// Workers respawned by the supervisor.
    pub respawned: u64,
    /// Wall time the drain took.
    pub elapsed: Duration,
}

/// How a finished [`Job`] hands its response back: called exactly once,
/// on the worker thread. A channel-backed closure serves blocking
/// callers ([`ServePool::submit`]); the event-loop transport passes a
/// closure that routes the response to its reactor and wakes it.
type Reply = Box<dyn FnOnce(Response) + Send>;

struct Job {
    env: RequestEnvelope,
    enqueued: Instant,
    deadline: Option<Instant>,
    reply: Reply,
}

struct Shared {
    /// The live engine: workers fetch the current epoch view per request,
    /// so queries racing a mutation or an epoch swap answer consistently
    /// against whichever view they grabbed.
    live: Arc<LiveEngine>,
    cache: ShardedLru,
    served: AtomicU64,
    submitted: AtomicU64,
    panics: AtomicU64,
    respawned: AtomicU64,
    dropped_on_drain: AtomicU64,
    snapshot_retries: u64,
    shutdown: AtomicBool,
    /// Jobs dequeued after this instant are dropped with a `draining`
    /// error instead of computed.
    drain_deadline: Mutex<Option<Instant>>,
    threads: usize,
    queue_depth: usize,
    /// Coalescing window (≥ 1; 1 = coalescing disabled).
    batch_window: usize,
    /// Requests answered through a coalesced flush of size ≥ 2.
    batched_requests: AtomicU64,
    /// Coalescing drain cycles (every dequeue of a coalescible request
    /// when the window is open, whatever occupancy it found).
    batch_flushes: AtomicU64,
    /// Sum of flush occupancies; `/ batch_flushes` = average batch size.
    batch_occupancy_sum: AtomicU64,
    /// Reusable what-if solve scratch (CG workspace + RHS + base
    /// resistances): cache-missing `whatif-edge` requests serialize on
    /// this lock but allocate nothing in steady state.
    whatif: Mutex<WhatIfScratch>,
    whatif_served: AtomicU64,
    whatif_micros: AtomicU64,
    /// The background optimization-job subsystem, when enabled. Job
    /// control ops never enter the worker queue; they go straight to the
    /// runner's registry.
    jobs: OnceLock<Arc<JobRunner>>,
    /// Transport-layer counters, registered by the TCP event loop so the
    /// `stats` op can report them; absent (all zeros) in pipe mode.
    transport: OnceLock<Arc<crate::server::TransportStats>>,
}

enum WorkerExit {
    Clean,
    Panicked,
}

/// The serving pool: supervised workers, bounded queue, shared cache.
pub struct ServePool {
    tx: Mutex<Option<SyncSender<Job>>>,
    workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    supervisor: Mutex<Option<std::thread::JoinHandle<()>>>,
    shared: Arc<Shared>,
    default_deadline: Option<Duration>,
}

impl std::fmt::Debug for ServePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServePool")
            .field("threads", &self.shared.threads)
            .field("queue_depth", &self.shared.queue_depth)
            .field("served", &self.shared.served.load(Ordering::Relaxed))
            .field("panics", &self.shared.panics.load(Ordering::Relaxed))
            .finish()
    }
}

impl ServePool {
    /// Spin up the supervised workers for an immutable `engine` (wrapped
    /// in an ephemeral [`LiveEngine`]: mutations work, nothing persists).
    pub fn new(engine: Arc<QueryEngine>, config: PoolConfig) -> Self {
        Self::with_live(LiveEngine::ephemeral(engine, None), config)
    }

    /// Spin up the supervised workers for a live (possibly durable,
    /// possibly recovered) engine.
    pub fn with_live(live: Arc<LiveEngine>, config: PoolConfig) -> Self {
        Self::with_live_and_jobs(live, config, None)
            .expect("a pool without a job subsystem cannot fail to start")
    }

    /// Spin up the supervised workers plus, when `jobs` is given, the
    /// background optimization-job subsystem (see [`crate::jobs`]).
    ///
    /// The job runner probes this pool's queue pressure between greedy
    /// iterations (`submitted > served` means requests are waiting or
    /// executing) and yields, so background optimization never starves
    /// interactive query latency.
    ///
    /// # Errors
    ///
    /// A message when the job subsystem cannot start: `max_jobs` of zero,
    /// an uncreatable checkpoint directory, or an unscannable one.
    pub fn with_live_and_jobs(
        live: Arc<LiveEngine>,
        config: PoolConfig,
        jobs: Option<JobsConfig>,
    ) -> Result<Self, String> {
        // `threads: 0` resolves through the shared helper; the pool keeps
        // a floor of two workers so one panicked worker never leaves the
        // queue unattended while the supervisor respawns it.
        let threads = if config.threads == 0 {
            reecc_core::resolve_threads(0).max(2)
        } else {
            config.threads
        };
        let queue_depth = config.queue_depth.max(1);
        let n = live.view().engine.graph().node_count();
        let shared = Arc::new(Shared {
            live,
            cache: ShardedLru::new(config.cache_capacity, config.cache_shards),
            served: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            respawned: AtomicU64::new(0),
            dropped_on_drain: AtomicU64::new(0),
            snapshot_retries: config.snapshot_retries,
            shutdown: AtomicBool::new(false),
            drain_deadline: Mutex::new(None),
            threads,
            queue_depth,
            batch_window: config.batch_window.max(1),
            batched_requests: AtomicU64::new(0),
            batch_flushes: AtomicU64::new(0),
            batch_occupancy_sum: AtomicU64::new(0),
            // Mutations only touch edges, never the node set, so the
            // scratch stays correctly sized across epochs.
            whatif: Mutex::new(WhatIfScratch::new(n)),
            whatif_served: AtomicU64::new(0),
            whatif_micros: AtomicU64::new(0),
            jobs: OnceLock::new(),
            transport: OnceLock::new(),
        });
        // Start the job runner before any worker thread exists, so a
        // failed start leaks nothing.
        if let Some(jobs_config) = jobs {
            let weak: Weak<Shared> = Arc::downgrade(&shared);
            let busy = Box::new(move || {
                weak.upgrade().is_some_and(|s| {
                    s.submitted.load(Ordering::Relaxed) > s.served.load(Ordering::Relaxed)
                })
            });
            let runner = JobRunner::start(Arc::clone(&shared.live), &jobs_config, busy)?;
            let _ = shared.jobs.set(runner);
        }
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let (exit_tx, exit_rx) = mpsc::channel::<WorkerExit>();
        let workers = Arc::new(Mutex::new(Vec::with_capacity(threads + 1)));
        {
            let mut handles = workers.lock().expect("worker registry poisoned");
            for i in 0..threads {
                handles.push(spawn_worker(i, &rx, &shared, &exit_tx));
            }
        }
        let supervisor = {
            let rx_jobs = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            let workers = Arc::clone(&workers);
            std::thread::Builder::new()
                .name("reecc-serve-supervisor".to_string())
                .spawn(move || supervisor_loop(&exit_rx, &exit_tx, &rx_jobs, &shared, &workers))
                .expect("spawn serve supervisor")
        };
        Ok(ServePool {
            tx: Mutex::new(Some(tx)),
            workers,
            supervisor: Mutex::new(Some(supervisor)),
            shared,
            default_deadline: config.default_deadline,
        })
    }

    /// The background job subsystem, when this pool was started with one.
    pub fn jobs(&self) -> Option<&Arc<JobRunner>> {
        self.shared.jobs.get()
    }

    /// Register the transport-layer counter block the `stats` op should
    /// report. The TCP event loop calls this once at startup; pipe mode
    /// never does, and `stats` then reports transport zeros. Returns
    /// `false` if a transport was already registered (the first wins).
    pub fn set_transport_stats(&self, stats: Arc<crate::server::TransportStats>) -> bool {
        self.shared.transport.set(stats).is_ok()
    }

    /// The current epoch's tier for eccentricity answers, as a wire
    /// string (a mutated epoch drops to `approx` until the re-sketch).
    pub fn tier_name(&self) -> &'static str {
        tier_name(self.shared.live.view().tier)
    }

    /// The live engine this pool serves.
    pub fn live(&self) -> &Arc<LiveEngine> {
        &self.shared.live
    }

    /// The resolved worker count (after `threads: 0` auto-detection).
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Enqueue a request without blocking. On success the response arrives
    /// on the returned channel exactly once.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the bounded queue is full;
    /// [`SubmitError::ShuttingDown`] after shutdown or drain began.
    pub fn submit(&self, env: RequestEnvelope) -> Result<Receiver<Response>, SubmitError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.submit_with(
            env,
            Box::new(move |response| {
                // A disappeared client is not an error; drop the reply.
                let _ = reply_tx.send(response);
            }),
        )?;
        Ok(reply_rx)
    }

    /// Enqueue a request without blocking, delivering the response by
    /// calling `reply` exactly once on the worker thread that computes
    /// it. This is the event-loop transport's entry point: its reactor
    /// passes a closure that forwards the response to a completion
    /// channel and wakes the `poll(2)` loop, so no thread ever parks on
    /// a per-request channel.
    ///
    /// `reply` must be cheap and must not block: it runs on a pool
    /// worker between jobs.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the bounded queue is full;
    /// [`SubmitError::ShuttingDown`] after shutdown or drain began. On
    /// error `reply` is returned unused (dropped).
    pub fn submit_with(
        &self,
        env: RequestEnvelope,
        reply: Box<dyn FnOnce(Response) + Send>,
    ) -> Result<(), SubmitError> {
        let guard = self.tx.lock().expect("pool sender poisoned");
        let Some(tx) = guard.as_ref() else {
            return Err(SubmitError::ShuttingDown);
        };
        let now = Instant::now();
        let deadline = match env.deadline_ms {
            Some(ms) => Some(now + Duration::from_millis(ms)),
            None => self.default_deadline.map(|d| now + d),
        };
        let job = Job { env, enqueued: now, deadline, reply };
        match tx.try_send(job) {
            Ok(()) => {
                self.shared.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                Err(SubmitError::Overloaded { depth: self.shared.queue_depth })
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Submit and wait for the answer, mapping every rejection to an error
    /// [`Response`] so callers always get one line per request.
    pub fn run(&self, env: RequestEnvelope) -> Response {
        if matches!(
            env.request,
            Request::OptimizeSubmit { .. }
                | Request::OptimizeStatus { .. }
                | Request::OptimizeCancel { .. }
                | Request::OptimizeEvents { .. }
                | Request::OptimizeResult { .. }
        ) {
            return self.run_job_op(env);
        }
        let id = env.id;
        let op = env.request.op_name();
        match self.submit(env) {
            Ok(rx) => rx.recv().unwrap_or_else(|_| {
                Response::error(
                    id,
                    op,
                    ErrorKind::Internal,
                    "worker dropped the request (pool shutting down?)".to_string(),
                )
            }),
            Err(SubmitError::Overloaded { depth }) => Response::error(
                id,
                op,
                ErrorKind::Overloaded,
                format!("request queue full (depth {depth}); retry later"),
            ),
            Err(SubmitError::ShuttingDown) => Response::error(
                id,
                op,
                ErrorKind::Draining,
                "pool is draining; request not accepted".to_string(),
            ),
        }
    }

    /// Answer one `optimize-*` op on the calling thread.
    ///
    /// Job control never enters the bounded worker queue: these are
    /// registry lookups (or, for `optimize-result` with `"wait":true`, a
    /// deliberate block of the *session* thread), so a full query queue
    /// can neither starve nor be starved by job traffic.
    fn run_job_op(&self, env: RequestEnvelope) -> Response {
        let id = env.id;
        let op = env.request.op_name();
        let started = Instant::now();
        let Some(runner) = self.shared.jobs.get() else {
            return Response::error(
                id,
                op,
                ErrorKind::BadRequest,
                "job subsystem disabled (start serve with --max-jobs >= 1)".to_string(),
            );
        };
        let unknown = |job: u64| Outcome::Error {
            kind: ErrorKind::BadRequest,
            message: format!("unknown job {job}"),
        };
        let outcome = match env.request {
            Request::OptimizeSubmit { spec } => match runner.submit(spec) {
                Ok(job) => Outcome::Job {
                    job,
                    state: "queued",
                    detail: String::new(),
                    iterations: 0,
                    k: spec.k as u64,
                },
                Err(JobSubmitError::Invalid(msg)) => {
                    Outcome::Error { kind: ErrorKind::BadRequest, message: msg }
                }
                Err(JobSubmitError::Overloaded(msg)) => {
                    Outcome::Error { kind: ErrorKind::Overloaded, message: msg }
                }
                Err(JobSubmitError::Io(msg)) => {
                    Outcome::Error { kind: ErrorKind::Internal, message: msg }
                }
            },
            Request::OptimizeStatus { job } | Request::OptimizeEvents { job, .. } => {
                // Through the plain request path `optimize-events`
                // degrades to a status probe; the transports stream it
                // line-by-line instead (see `crate::server`).
                match runner.status(job) {
                    Some(report) => Outcome::job_status(&report),
                    None => unknown(job),
                }
            }
            Request::OptimizeCancel { job } => match runner.cancel(job) {
                Some(report) => Outcome::job_status(&report),
                None => unknown(job),
            },
            Request::OptimizeResult { job, wait } => {
                let report =
                    if wait { runner.wait(job, JOB_WAIT_TIMEOUT) } else { runner.status(job) };
                match report {
                    Some(report) => Outcome::job_result(&report),
                    None => unknown(job),
                }
            }
            _ => unreachable!("run_job_op is only called for optimize-* requests"),
        };
        Response {
            id,
            op,
            outcome,
            tier: None,
            cached: false,
            compute_micros: started.elapsed().as_micros() as u64,
            queue_micros: 0,
        }
    }

    /// Requests answered so far (any outcome, drain drops included).
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Worker panics contained so far.
    pub fn panics_total(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Workers respawned by the supervisor so far.
    pub fn workers_respawned(&self) -> u64 {
        self.shared.respawned.load(Ordering::Relaxed)
    }

    /// The current epoch view's graph fingerprint.
    pub fn graph_fingerprint(&self) -> u64 {
        self.shared.live.view().fingerprint
    }

    /// Stop accepting, finish queued work for up to `grace`, answer
    /// anything still queued past the deadline with a `draining` error,
    /// and join every worker. Idempotent: a second call (or `Drop`)
    /// reports the same final counters with zero additional work.
    pub fn drain(&self, grace: Duration) -> DrainReport {
        let started = Instant::now();
        *self.shared.drain_deadline.lock().expect("drain deadline poisoned") =
            Some(started + grace);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Background optimization jobs stop first: running ones are
        // cancelled cooperatively and their checkpoints kept, so the next
        // process resumes them. Idempotent, like the rest of drain.
        if let Some(runner) = self.shared.jobs.get() {
            runner.shutdown();
        }
        // Closing the channel stops admissions and lets workers run the
        // queue dry; jobs dequeued past the deadline are answered with
        // `draining` instead of computed.
        drop(self.tx.lock().expect("pool sender poisoned").take());
        if let Some(handle) = self.supervisor.lock().expect("supervisor handle poisoned").take()
        {
            let _ = handle.join();
        }
        let handles: Vec<_> =
            self.workers.lock().expect("worker registry poisoned").drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        // A re-sketch kicked by a drained budget may still be running;
        // let it finish (or abort) before the process tears down state.
        self.shared.live.join_resketch();
        let submitted = self.shared.submitted.load(Ordering::SeqCst);
        let dropped = self.shared.dropped_on_drain.load(Ordering::SeqCst);
        let served = self.shared.served.load(Ordering::SeqCst);
        DrainReport {
            submitted,
            answered: served - dropped,
            dropped,
            panics: self.shared.panics.load(Ordering::SeqCst),
            respawned: self.shared.respawned.load(Ordering::SeqCst),
            elapsed: started.elapsed(),
        }
    }
}

impl Drop for ServePool {
    fn drop(&mut self) {
        // A normal shutdown is a drain with no deadline pressure: finish
        // everything queued, lose nothing.
        let _ = self.drain(Duration::from_secs(3600));
    }
}

fn spawn_worker(
    index: usize,
    rx: &Arc<Mutex<Receiver<Job>>>,
    shared: &Arc<Shared>,
    exit_tx: &Sender<WorkerExit>,
) -> std::thread::JoinHandle<()> {
    let rx = Arc::clone(rx);
    let shared = Arc::clone(shared);
    let exit_tx = exit_tx.clone();
    std::thread::Builder::new()
        .name(format!("reecc-serve-{index}"))
        .spawn(move || {
            let reason = worker_loop(&rx, &shared);
            let _ = exit_tx.send(reason);
        })
        .expect("spawn serve worker")
}

/// Respawn panicked workers until every worker has exited cleanly.
///
/// The supervisor keeps a live-worker count: a clean exit (channel closed
/// at shutdown) decrements it; a panic exit spawns a replacement unless
/// the pool is already shutting down. It holds its own `exit_tx` clone to
/// hand to replacements, so termination is by counting, not disconnect.
fn supervisor_loop(
    exit_rx: &Receiver<WorkerExit>,
    exit_tx: &Sender<WorkerExit>,
    rx_jobs: &Arc<Mutex<Receiver<Job>>>,
    shared: &Arc<Shared>,
    workers: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    let mut live = shared.threads;
    let mut spawned = shared.threads;
    while live > 0 {
        match exit_rx.recv() {
            Ok(WorkerExit::Clean) => live -= 1,
            Ok(WorkerExit::Panicked) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    live -= 1;
                    continue;
                }
                let handle = spawn_worker(spawned, rx_jobs, shared, exit_tx);
                spawned += 1;
                shared.respawned.fetch_add(1, Ordering::SeqCst);
                workers.lock().expect("worker registry poisoned").push(handle);
            }
            Err(_) => break,
        }
    }
}

fn tier_name(tier: QueryTier) -> &'static str {
    match tier {
        QueryTier::Fast => "fast",
        QueryTier::Approx => "approx",
        QueryTier::Exact => "exact",
    }
}

/// Requests the coalescing drain may batch into one flush: the
/// eccentricity family, whose misses share one panel sweep. Everything
/// else (mutations, what-ifs, stats) keeps the scalar path.
fn coalescible(request: &Request) -> bool {
    matches!(request, Request::Ecc { .. } | Request::Radius | Request::Diameter)
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>, shared: &Shared) -> WorkerExit {
    loop {
        // Hold the lock only for the blocking recv (plus a non-blocking
        // coalescing drain); execution runs unlocked so workers overlap
        // on distinct jobs. A non-coalescible job pulled mid-drain cannot
        // be pushed back, so it is carried and processed after the batch.
        let (mut batch, carry) = {
            let guard = match rx.lock() {
                Ok(guard) => guard,
                Err(_) => return WorkerExit::Clean,
            };
            let Ok(first) = guard.recv() else {
                return WorkerExit::Clean; // channel closed: shutdown
            };
            let mut batch = Vec::with_capacity(shared.batch_window.min(16));
            let mut carry = None;
            batch.push(first);
            if shared.batch_window > 1 && coalescible(&batch[0].env.request) {
                while batch.len() < shared.batch_window {
                    match guard.try_recv() {
                        Ok(next) if coalescible(&next.env.request) => batch.push(next),
                        Ok(next) => {
                            carry = Some(next);
                            break;
                        }
                        Err(_) => break,
                    }
                }
            }
            (batch, carry)
        };
        if shared.batch_window > 1 && coalescible(&batch[0].env.request) {
            shared.batch_flushes.fetch_add(1, Ordering::Relaxed);
            shared.batch_occupancy_sum.fetch_add(batch.len() as u64, Ordering::Relaxed);
            if batch.len() >= 2 {
                shared.batched_requests.fetch_add(batch.len() as u64, Ordering::Relaxed);
            }
        }
        let mut exit = if batch.len() >= 2 {
            process_batch(shared, batch)
        } else {
            process_one(shared, batch.pop().expect("batch holds the dequeued job"))
        };
        // The carry is owned by this worker, not the queue: it must be
        // answered even when the batch panicked this thread toward exit.
        if let Some(job) = carry {
            exit = exit.or(process_one(shared, job));
        }
        if let Some(reason) = exit {
            return reason;
        }
    }
}

/// Answer one job on the scalar path. Returns `Some(WorkerExit)` when the
/// worker thread must exit (contained panic); `None` to keep looping.
fn process_one(shared: &Shared, job: Job) -> Option<WorkerExit> {
    let started = Instant::now();
    let queue_micros = started.duration_since(job.enqueued).as_micros() as u64;
    let past_drain = shared
        .drain_deadline
        .lock()
        .ok()
        .and_then(|g| *g)
        .is_some_and(|deadline| started > deadline);
    let response = if past_drain {
        shared.dropped_on_drain.fetch_add(1, Ordering::SeqCst);
        Response::error(
            job.env.id,
            job.env.request.op_name(),
            ErrorKind::Draining,
            format!("dropped: still queued {queue_micros}us past the drain deadline"),
        )
    } else if job.deadline.is_some_and(|d| started > d) {
        Response::error(
            job.env.id,
            job.env.request.op_name(),
            ErrorKind::DeadlineExceeded,
            format!("deadline expired after {queue_micros}us in queue"),
        )
    } else {
        // Containment boundary: a panic below this line costs this
        // one request (answered with `internal`) and this one worker
        // thread (respawned by the supervisor) — never the pool.
        match catch_unwind(AssertUnwindSafe(|| execute(shared, job.env.request))) {
            Ok((outcome, cached, tier)) => {
                let tier =
                    if matches!(outcome, Outcome::Error { .. }) { None } else { Some(tier) };
                Response {
                    id: job.env.id,
                    op: job.env.request.op_name(),
                    outcome,
                    tier: tier.map(tier_name),
                    cached,
                    compute_micros: started.elapsed().as_micros() as u64,
                    queue_micros,
                }
            }
            Err(payload) => {
                shared.panics.fetch_add(1, Ordering::SeqCst);
                let detail = panic_message(payload.as_ref());
                let response = Response::error(
                    job.env.id,
                    job.env.request.op_name(),
                    ErrorKind::Internal,
                    format!(
                        "worker panicked while serving this request: {detail}; \
                         the worker was respawned and the pool keeps serving"
                    ),
                );
                shared.served.fetch_add(1, Ordering::SeqCst);
                (job.reply)(response);
                // Exit so the half-unwound thread is discarded; the
                // supervisor spawns a clean replacement.
                return Some(WorkerExit::Panicked);
            }
        }
    };
    shared.served.fetch_add(1, Ordering::SeqCst);
    (job.reply)(response);
    None
}

/// Answer a coalesced flush of eccentricity-family jobs with one batched
/// sweep.
///
/// Per-request semantics are identical to the scalar path: drain and
/// deadline checks run per job, every request performs exactly one cache
/// lookup under its own key (a hit replies immediately and is never
/// recomputed), and `ecc` cache misses share a single
/// [`QueryEngine::eccentricity_batch`] call (full-scan batch on mutated
/// epochs). `radius` / `diameter` misses share one full sweep that caches
/// both extremes. The whole compute phase answers against one epoch view,
/// exactly like a scalar request does.
///
/// Panic containment matches the scalar path, widened to the flush: a
/// panic (engine bug or armed `worker.compute` failpoint) answers every
/// not-yet-answered job in the flush with an `internal` error, then exits
/// the worker for the supervisor to respawn. Every job gets exactly one
/// reply and one `served` increment on every path.
fn process_batch(shared: &Shared, jobs: Vec<Job>) -> Option<WorkerExit> {
    let started = Instant::now();
    let drain_deadline = shared.drain_deadline.lock().ok().and_then(|g| *g);
    let mut slots: Vec<Option<Job>> = jobs.into_iter().map(Some).collect();
    // Per-job admission checks first, exactly as the scalar path orders
    // them: drain overrides deadline, both answer without touching the
    // engine.
    for slot in slots.iter_mut() {
        let job = slot.as_ref().expect("slot still owned");
        let queue_micros = started.duration_since(job.enqueued).as_micros() as u64;
        if drain_deadline.is_some_and(|deadline| started > deadline) {
            shared.dropped_on_drain.fetch_add(1, Ordering::SeqCst);
            let job = slot.take().expect("slot still owned");
            let response = Response::error(
                job.env.id,
                job.env.request.op_name(),
                ErrorKind::Draining,
                format!("dropped: still queued {queue_micros}us past the drain deadline"),
            );
            shared.served.fetch_add(1, Ordering::SeqCst);
            (job.reply)(response);
        } else if job.deadline.is_some_and(|d| started > d) {
            let job = slot.take().expect("slot still owned");
            let response = Response::error(
                job.env.id,
                job.env.request.op_name(),
                ErrorKind::DeadlineExceeded,
                format!("deadline expired after {queue_micros}us in queue"),
            );
            shared.served.fetch_add(1, Ordering::SeqCst);
            (job.reply)(response);
        }
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let view = shared.live.view();
        let tier = view.tier;
        let fp = view.fingerprint;
        let n = view.engine.graph().node_count();
        let finish = |job: Job, outcome: Outcome, cached: bool| {
            let tier = if matches!(outcome, Outcome::Error { .. }) { None } else { Some(tier) };
            let response = Response {
                id: job.env.id,
                op: job.env.request.op_name(),
                outcome,
                tier: tier.map(tier_name),
                cached,
                compute_micros: started.elapsed().as_micros() as u64,
                queue_micros: started.duration_since(job.enqueued).as_micros() as u64,
            };
            shared.served.fetch_add(1, Ordering::SeqCst);
            (job.reply)(response);
        };
        // Phase 1 — per-job failpoint, validation, and the one cache
        // lookup each request is entitled to. Hits answer immediately;
        // misses queue for the shared sweeps.
        let mut ecc_misses: Vec<(usize, usize)> = Vec::new(); // (slot, v)
        let mut sweep_misses: Vec<usize> = Vec::new(); // slot (radius/diameter)
        for (idx, slot) in slots.iter_mut().enumerate() {
            let Some(job) = slot.as_ref() else { continue };
            if let Err(message) = failpoint::hit("worker.compute") {
                let job = slot.take().expect("slot still owned");
                finish(job, Outcome::Error { kind: ErrorKind::Internal, message }, false);
                continue;
            }
            match job.env.request {
                Request::Ecc { v } => {
                    if v >= n {
                        let job = slot.take().expect("slot still owned");
                        let message = format!("v = {v} out of range (graph has {n} nodes)");
                        finish(
                            job,
                            Outcome::Error { kind: ErrorKind::BadRequest, message },
                            false,
                        );
                    } else if let Some(hit) = shared.cache.get(&CacheKey::Ecc(fp, v)) {
                        let job = slot.take().expect("slot still owned");
                        finish(job, Outcome::Ecc { value: hit.value, node: hit.node }, true);
                    } else {
                        ecc_misses.push((idx, v));
                    }
                }
                Request::Radius | Request::Diameter => {
                    let key = match job.env.request {
                        Request::Radius => CacheKey::Radius(fp),
                        _ => CacheKey::Diameter(fp),
                    };
                    if let Some(hit) = shared.cache.get(&key) {
                        let job = slot.take().expect("slot still owned");
                        finish(job, Outcome::Ecc { value: hit.value, node: hit.node }, true);
                    } else {
                        sweep_misses.push(idx);
                    }
                }
                _ => unreachable!("only coalescible requests enter a batch"),
            }
        }
        // Phase 2 — one batched panel sweep answers every `ecc` miss.
        // Duplicate sources are computed redundantly but bitwise equally;
        // each slot still inserts/answers under its own key exactly once.
        if !ecc_misses.is_empty() {
            let sources: Vec<usize> = ecc_misses.iter().map(|&(_, v)| v).collect();
            let answers = match tier {
                QueryTier::Fast => view.engine.eccentricity_batch(&sources),
                _ => view.engine.eccentricity_full_scan_batch(&sources),
            };
            for (&(idx, v), ans) in ecc_misses.iter().zip(&answers) {
                let cached = CachedAnswer { value: ans.value, node: ans.farthest };
                shared.cache.insert(CacheKey::Ecc(fp, v), cached);
                let job = slots[idx].take().expect("slot still owned");
                finish(job, Outcome::Ecc { value: cached.value, node: cached.node }, false);
            }
        }
        // Phase 3 — one full sweep answers every `radius`/`diameter`
        // miss and caches both extremes, like the scalar path.
        if !sweep_misses.is_empty() {
            let (min, max) = radius_diameter_sweep(shared, &view, n, fp);
            for idx in sweep_misses {
                let job = slots[idx].take().expect("slot still owned");
                let chosen = match job.env.request {
                    Request::Radius => min,
                    _ => max,
                };
                finish(job, Outcome::Ecc { value: chosen.value, node: chosen.node }, false);
            }
        }
    }));
    match outcome {
        Ok(()) => None,
        Err(payload) => {
            shared.panics.fetch_add(1, Ordering::SeqCst);
            let detail = panic_message(payload.as_ref());
            for slot in slots.iter_mut() {
                let Some(job) = slot.take() else { continue };
                let response = Response::error(
                    job.env.id,
                    job.env.request.op_name(),
                    ErrorKind::Internal,
                    format!(
                        "worker panicked while serving this request: {detail}; \
                         the worker was respawned and the pool keeps serving"
                    ),
                );
                shared.served.fetch_add(1, Ordering::SeqCst);
                (job.reply)(response);
            }
            Some(WorkerExit::Panicked)
        }
    }
}

/// Best-effort extraction of a `panic!` payload message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn ecc_answer(view: &EpochView, v: usize) -> CachedAnswer {
    let ans = match view.tier {
        QueryTier::Fast => view.engine.eccentricity(v),
        _ => view.engine.eccentricity_full_scan(v),
    };
    CachedAnswer { value: ans.value, node: ans.farthest }
}

/// One full sweep computing both the radius (min eccentricity) and the
/// diameter (max); both are inserted into the cache so the sibling query
/// is a hit. Shared by the scalar path and coalesced flushes.
fn radius_diameter_sweep(
    shared: &Shared,
    view: &EpochView,
    n: usize,
    fp: u64,
) -> (CachedAnswer, CachedAnswer) {
    let mut min = CachedAnswer { value: f64::INFINITY, node: 0 };
    let mut max = CachedAnswer { value: f64::NEG_INFINITY, node: 0 };
    for v in 0..n {
        let ans = ecc_answer(view, v);
        if ans.value < min.value {
            min = CachedAnswer { value: ans.value, node: v };
        }
        if ans.value > max.value {
            max = CachedAnswer { value: ans.value, node: v };
        }
    }
    shared.cache.insert(CacheKey::Radius(fp), min);
    shared.cache.insert(CacheKey::Diameter(fp), max);
    (min, max)
}

/// Run one validated-or-rejected operation, consulting the cache first.
///
/// The epoch view is fetched once up front: the whole request answers
/// against one consistent engine even if mutations land concurrently.
/// Cache keys carry the view's fingerprint, so a mutation implicitly
/// invalidates every cached answer (old-epoch entries age out of the
/// LRU). Returns the outcome, whether it was cached, and the view's tier.
fn execute(shared: &Shared, request: Request) -> (Outcome, bool, QueryTier) {
    let view = shared.live.view();
    let tier = view.tier;
    if let Err(msg) = failpoint::hit("worker.compute") {
        return (Outcome::Error { kind: ErrorKind::Internal, message: msg }, false, tier);
    }
    let n = view.engine.graph().node_count();
    let fp = view.fingerprint;
    let bad = |message: String| {
        (Outcome::Error { kind: ErrorKind::BadRequest, message }, false, tier)
    };
    let check = |node: usize, name: &str| -> Option<String> {
        (node >= n).then(|| format!("{name} = {node} out of range (graph has {n} nodes)"))
    };
    match request {
        Request::Ecc { v } => {
            if let Some(msg) = check(v, "v") {
                return bad(msg);
            }
            let key = CacheKey::Ecc(fp, v);
            if let Some(hit) = shared.cache.get(&key) {
                return (Outcome::Ecc { value: hit.value, node: hit.node }, true, tier);
            }
            let ans = ecc_answer(&view, v);
            shared.cache.insert(key, ans);
            (Outcome::Ecc { value: ans.value, node: ans.node }, false, tier)
        }
        Request::Res { u, v } => {
            if let Some(msg) = check(u, "u").or_else(|| check(v, "v")) {
                return bad(msg);
            }
            let (a, b) = if u <= v { (u, v) } else { (v, u) };
            let key = CacheKey::Res(fp, a, b);
            if let Some(hit) = shared.cache.get(&key) {
                return (Outcome::Scalar { value: hit.value }, true, tier);
            }
            let value = view.engine.resistance(a, b);
            shared.cache.insert(key, CachedAnswer { value, node: 0 });
            (Outcome::Scalar { value }, false, tier)
        }
        Request::Radius | Request::Diameter => {
            let key = match request {
                Request::Radius => CacheKey::Radius(fp),
                _ => CacheKey::Diameter(fp),
            };
            if let Some(hit) = shared.cache.get(&key) {
                return (Outcome::Ecc { value: hit.value, node: hit.node }, true, tier);
            }
            let (min, max) = radius_diameter_sweep(shared, &view, n, fp);
            let chosen = if matches!(request, Request::Radius) { min } else { max };
            (Outcome::Ecc { value: chosen.value, node: chosen.node }, false, tier)
        }
        Request::WhatIfEdge { s, u, v } => {
            if let Some(msg) = check(s, "s").or_else(|| check(u, "u")).or_else(|| check(v, "v"))
            {
                return bad(msg);
            }
            if u == v {
                return bad(format!("whatif-edge needs two distinct endpoints, got {u} twice"));
            }
            let (a, b) = if u <= v { (u, v) } else { (v, u) };
            let key = CacheKey::WhatIf(fp, s, a, b);
            if let Some(hit) = shared.cache.get(&key) {
                return (Outcome::Ecc { value: hit.value, node: hit.node }, true, tier);
            }
            // Warm path: reuse the pool-held solve scratch instead of
            // allocating a CG workspace per request. A poisoned lock just
            // means a panicked worker died mid-solve; resetting the
            // scratch makes it usable again.
            let started = Instant::now();
            let ans = {
                let mut scratch = match shared.whatif.lock() {
                    Ok(guard) => guard,
                    Err(poison) => {
                        let mut guard = poison.into_inner();
                        guard.reset();
                        guard
                    }
                };
                view.engine.eccentricity_after_edge_with(&mut scratch, s, Edge::new(a, b))
            };
            let micros = started.elapsed().as_micros() as u64;
            shared.whatif_served.fetch_add(1, Ordering::Relaxed);
            shared.whatif_micros.fetch_add(micros, Ordering::Relaxed);
            let cached = CachedAnswer { value: ans.value, node: ans.farthest };
            shared.cache.insert(key, cached);
            (Outcome::Ecc { value: cached.value, node: cached.node }, false, tier)
        }
        Request::WhatIfRemoveEdge { s, u, v } => {
            if let Some(msg) = check(s, "s").or_else(|| check(u, "u")).or_else(|| check(v, "v"))
            {
                return bad(msg);
            }
            if u == v {
                return bad(format!(
                    "whatif-remove-edge needs two distinct endpoints, got {u} twice"
                ));
            }
            let (a, b) = if u <= v { (u, v) } else { (v, u) };
            if !view.engine.graph().has_edge(a, b) {
                return bad(format!("edge {{{a}, {b}}} is not in the graph"));
            }
            let key = CacheKey::WhatIfRemove(fp, s, a, b);
            if let Some(hit) = shared.cache.get(&key) {
                return (Outcome::Ecc { value: hit.value, node: hit.node }, true, tier);
            }
            // Same warm-scratch path as `whatif-edge`: the removal solve
            // reuses the pool-held CG workspace and base resistances.
            let started = Instant::now();
            let ans = {
                let mut scratch = match shared.whatif.lock() {
                    Ok(guard) => guard,
                    Err(poison) => {
                        let mut guard = poison.into_inner();
                        guard.reset();
                        guard
                    }
                };
                view.engine.eccentricity_after_removal_with(&mut scratch, s, Edge::new(a, b))
            };
            let micros = started.elapsed().as_micros() as u64;
            shared.whatif_served.fetch_add(1, Ordering::Relaxed);
            shared.whatif_micros.fetch_add(micros, Ordering::Relaxed);
            match ans {
                Ok(ans) => {
                    let cached = CachedAnswer { value: ans.value, node: ans.farthest };
                    shared.cache.insert(key, cached);
                    (Outcome::Ecc { value: cached.value, node: cached.node }, false, tier)
                }
                // A bridge is a structural property of the request, not
                // an engine failure: the client asked to disconnect the
                // graph.
                Err(e @ CoreError::DisconnectingRemoval { .. }) => bad(e.to_string()),
                Err(e) => (
                    Outcome::Error { kind: ErrorKind::Internal, message: e.to_string() },
                    false,
                    tier,
                ),
            }
        }
        Request::AddEdge { u, v } | Request::RemoveEdge { u, v } => {
            if let Some(msg) = check(u, "u").or_else(|| check(v, "v")) {
                return bad(msg);
            }
            let op = match request {
                Request::AddEdge { .. } => WalOp::AddEdge,
                _ => WalOp::RemoveEdge,
            };
            match shared.live.apply_mutation(op, u, v) {
                Ok(receipt) => (
                    Outcome::Mutated {
                        r_uv: receipt.r_uv,
                        cost: receipt.cost,
                        budget_remaining: receipt.budget_remaining,
                        epoch: receipt.epoch,
                        seq: receipt.seq,
                        resketch: receipt.resketch_kicked,
                    },
                    false,
                    // The published view changed; report the tier the
                    // mutation left us at.
                    shared.live.view().tier,
                ),
                Err(LiveError::Rejected(e)) => bad(e.to_string()),
                Err(e) => (
                    Outcome::Error { kind: ErrorKind::Internal, message: e.to_string() },
                    false,
                    tier,
                ),
            }
        }
        Request::Epoch => (
            Outcome::EpochInfo {
                epoch: shared.live.epoch(),
                mutations_in_epoch: shared.live.mutations_in_epoch(),
                budget_total: shared.live.budget_total(),
                budget_remaining: shared.live.budget_remaining(),
                resketch_running: shared.live.resketch_running(),
            },
            false,
            tier,
        ),
        Request::OptimizeSubmit { .. }
        | Request::OptimizeStatus { .. }
        | Request::OptimizeCancel { .. }
        | Request::OptimizeEvents { .. }
        | Request::OptimizeResult { .. } => {
            bad("optimize-* ops are job control, not pool work; submit them through \
             ServePool::run"
                .to_string())
        }
        Request::Stats => {
            let cache = shared.cache.stats();
            let sketch = view.engine.sketch();
            let diag = sketch.diagnostics();
            let jobs = shared.jobs.get().map(|r| r.stats()).unwrap_or_default();
            let transport = shared.transport.get().map(|t| t.snapshot()).unwrap_or_default();
            (
                Outcome::Stats(Box::new(StatsReport {
                    nodes: n,
                    edges: view.engine.graph().edge_count(),
                    fingerprint: fp,
                    epsilon: sketch.epsilon(),
                    dimension: sketch.dimension(),
                    hull_size: view.engine.hull_size(),
                    degraded_rows: diag.unconverged.len() + diag.dropped.len(),
                    tier: tier_name(tier),
                    threads: shared.threads,
                    queue_depth: shared.queue_depth,
                    served: shared.served.load(Ordering::Relaxed),
                    panics_total: shared.panics.load(Ordering::Relaxed),
                    workers_respawned: shared.respawned.load(Ordering::Relaxed),
                    dropped_on_drain: shared.dropped_on_drain.load(Ordering::Relaxed),
                    snapshot_retries: shared.snapshot_retries,
                    whatif_served: shared.whatif_served.load(Ordering::Relaxed),
                    whatif_micros_total: shared.whatif_micros.load(Ordering::Relaxed),
                    batched_requests: shared.batched_requests.load(Ordering::Relaxed),
                    batch_flushes: shared.batch_flushes.load(Ordering::Relaxed),
                    batch_occupancy_sum: shared.batch_occupancy_sum.load(Ordering::Relaxed),
                    cache_hits: cache.hits,
                    cache_misses: cache.misses,
                    cache_evictions: cache.evictions,
                    cache_entries: cache.entries,
                    epoch: shared.live.epoch(),
                    mutations_applied: shared.live.mutations_applied(),
                    error_budget_remaining: shared.live.budget_remaining(),
                    resketches_total: shared.live.resketches_total(),
                    wal_bytes: shared.live.wal_bytes(),
                    wal_replayed_on_start: shared.live.wal_replayed_on_start(),
                    jobs_submitted: jobs.submitted,
                    jobs_running: jobs.running,
                    jobs_completed: jobs.completed,
                    jobs_cancelled: jobs.cancelled,
                    jobs_failed: jobs.failed,
                    job_checkpoint_bytes: jobs.checkpoint_bytes,
                    connections_accepted: transport.connections_accepted,
                    connections_active: transport.connections_active,
                    connections_shed: transport.connections_shed,
                    connections_timed_out: transport.connections_timed_out,
                    bytes_read: transport.bytes_read,
                    bytes_written: transport.bytes_written,
                    write_buffer_sheds: transport.write_buffer_sheds,
                })),
                false,
                tier,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reecc_core::SketchParams;
    use reecc_graph::generators::barabasi_albert;

    fn pool(threads: usize, queue_depth: usize) -> ServePool {
        let g = barabasi_albert(40, 2, 9);
        let engine = QueryEngine::build(
            &g,
            &SketchParams { epsilon: 0.5, seed: 3, ..Default::default() },
        )
        .unwrap();
        ServePool::new(
            Arc::new(engine),
            PoolConfig { threads, queue_depth, ..Default::default() },
        )
    }

    fn env(request: Request) -> RequestEnvelope {
        RequestEnvelope { id: None, deadline_ms: None, request }
    }

    #[test]
    fn answers_each_op_and_caches_repeats() {
        let p = pool(2, 16);
        let first = p.run(env(Request::Ecc { v: 5 }));
        assert!(first.is_ok(), "{first:?}");
        assert!(!first.cached);
        assert_eq!(first.tier, Some("fast"));
        let again = p.run(env(Request::Ecc { v: 5 }));
        assert!(again.cached, "{again:?}");
        assert_eq!(again.outcome, first.outcome);

        let res = p.run(env(Request::Res { u: 0, v: 7 }));
        let res_flipped = p.run(env(Request::Res { u: 7, v: 0 }));
        assert!(res_flipped.cached, "endpoint order must normalize: {res_flipped:?}");
        assert_eq!(res.outcome, res_flipped.outcome);

        let radius = p.run(env(Request::Radius));
        let diameter = p.run(env(Request::Diameter));
        assert!(diameter.cached, "radius sweep must have cached the diameter");
        match (&radius.outcome, &diameter.outcome) {
            (Outcome::Ecc { value: r, .. }, Outcome::Ecc { value: d, .. }) => {
                assert!(r <= d, "radius {r} must not exceed diameter {d}");
            }
            other => panic!("{other:?}"),
        }

        let whatif = p.run(env(Request::WhatIfEdge { s: 5, u: 0, v: 39 }));
        assert!(whatif.is_ok(), "{whatif:?}");
        let whatif_again = p.run(env(Request::WhatIfEdge { s: 5, u: 39, v: 0 }));
        assert!(whatif_again.cached, "endpoint order must normalize: {whatif_again:?}");
        assert_eq!(whatif_again.outcome, whatif.outcome);

        let stats = p.run(env(Request::Stats));
        match stats.outcome {
            Outcome::Stats(s) => {
                assert_eq!(s.nodes, 40);
                assert_eq!(s.threads, 2);
                assert!(s.cache_hits >= 3, "{s:?}");
                assert!(s.served >= 6);
                assert_eq!(s.panics_total, 0);
                assert_eq!(s.workers_respawned, 0);
                assert_eq!(s.dropped_on_drain, 0);
                // One cache miss hit the warm scratch path; the cached
                // repeat must not re-count.
                assert_eq!(s.whatif_served, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mutations_apply_through_the_pool_and_invalidate_answers() {
        let p = pool(2, 16);
        let before = p.run(env(Request::Ecc { v: 0 }));
        assert_eq!(before.tier, Some("fast"));
        let fp_before = p.graph_fingerprint();
        let mutated = p.run(env(Request::AddEdge { u: 0, v: 39 }));
        match mutated.outcome {
            Outcome::Mutated { r_uv, cost, seq, .. } => {
                assert!(r_uv > 0.0 && cost > 0.0);
                assert_eq!(seq, 0);
            }
            other => panic!("{other:?}"),
        }
        assert_ne!(p.graph_fingerprint(), fp_before, "mutation must re-key the cache");
        // The same query now recomputes against the mutated view.
        let after = p.run(env(Request::Ecc { v: 0 }));
        assert!(!after.cached, "old-fingerprint cache entry must not answer");
        assert_eq!(after.tier, Some("approx"), "mutated epoch cannot trust the hull");
        // Duplicate add is a bad request, not an internal error.
        let dup = p.run(env(Request::AddEdge { u: 39, v: 0 }));
        match dup.outcome {
            Outcome::Error { kind, .. } => assert_eq!(kind, ErrorKind::BadRequest),
            other => panic!("{other:?}"),
        }
        // So is removing an edge that is not there.
        let view = p.live().view();
        let g = view.engine.graph();
        let (a, b) = (0..g.node_count())
            .flat_map(|a| ((a + 1)..g.node_count()).map(move |b| (a, b)))
            .find(|&(a, b)| !g.has_edge(a, b))
            .expect("a sparse graph has absent pairs");
        let missing = p.run(env(Request::RemoveEdge { u: a, v: b }));
        match missing.outcome {
            Outcome::Error { kind, .. } => assert_eq!(kind, ErrorKind::BadRequest),
            other => panic!("{other:?}"),
        }
        let epoch = p.run(env(Request::Epoch));
        match epoch.outcome {
            Outcome::EpochInfo { epoch, mutations_in_epoch, .. } => {
                assert_eq!(epoch, 0);
                assert_eq!(mutations_in_epoch, 1);
            }
            other => panic!("{other:?}"),
        }
        let stats = p.run(env(Request::Stats));
        match stats.outcome {
            Outcome::Stats(s) => {
                assert_eq!(s.mutations_applied, 1);
                assert_eq!(s.epoch, 0);
                assert_eq!(s.wal_bytes, 0, "ephemeral pool has no WAL");
                assert_eq!(s.wal_replayed_on_start, 0);
                assert_eq!(s.resketches_total, 0);
                assert!(s.error_budget_remaining >= 0.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn invalid_arguments_are_bad_requests_not_panics() {
        let p = pool(1, 8);
        for request in [
            Request::Ecc { v: 400 },
            Request::Res { u: 0, v: 400 },
            Request::WhatIfEdge { s: 400, u: 0, v: 1 },
            Request::WhatIfEdge { s: 0, u: 3, v: 3 },
            Request::AddEdge { u: 0, v: 400 },
            Request::RemoveEdge { u: 400, v: 0 },
            Request::AddEdge { u: 3, v: 3 },
        ] {
            let resp = p.run(env(request));
            match resp.outcome {
                Outcome::Error { kind, .. } => assert_eq!(kind, ErrorKind::BadRequest),
                other => panic!("{request:?} -> {other:?}"),
            }
        }
    }

    #[test]
    fn full_queue_rejects_with_overloaded_instead_of_blocking() {
        let p = pool(1, 1);
        // Occupy the single worker with a full radius sweep, then flood.
        let busy = p.submit(env(Request::Radius)).unwrap();
        let mut outcomes = Vec::new();
        for v in 0..12 {
            outcomes.push(p.submit(env(Request::Ecc { v })));
        }
        let overloaded = outcomes
            .iter()
            .filter(|r| matches!(r, Err(SubmitError::Overloaded { .. })))
            .count();
        assert!(overloaded >= 1, "flooding a depth-1 queue must overload: {outcomes:?}");
        // Accepted requests still complete.
        for rx in outcomes.into_iter().flatten() {
            assert!(rx.recv().unwrap().is_ok());
        }
        assert!(busy.recv().unwrap().is_ok());
    }

    #[test]
    fn expired_deadline_is_reported_not_computed() {
        let p = pool(1, 4);
        // Keep the worker busy so the dated request waits in queue past
        // its 0 ms deadline.
        let busy = p.submit(env(Request::Radius)).unwrap();
        let dated = p
            .submit(RequestEnvelope {
                id: Some(7),
                deadline_ms: Some(0),
                request: Request::Ecc { v: 1 },
            })
            .unwrap();
        let resp = dated.recv().unwrap();
        match resp.outcome {
            Outcome::Error { kind, .. } => {
                assert_eq!(kind, ErrorKind::DeadlineExceeded);
                assert_eq!(resp.id, Some(7));
            }
            other => panic!("{other:?}"),
        }
        assert!(busy.recv().unwrap().is_ok());
    }

    #[test]
    fn concurrent_submitters_all_get_answers() {
        let p = Arc::new(pool(4, 64));
        let handles: Vec<_> = (0..4usize)
            .map(|t| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    let mut ok = 0;
                    for i in 0..20 {
                        let resp = p.run(env(Request::Ecc { v: (t * 10 + i) % 40 }));
                        if resp.is_ok() {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 80, "large queue + run() must answer everything");
        assert_eq!(p.served(), 80);
    }

    fn pool_of(g: &reecc_graph::Graph, threads: usize) -> ServePool {
        let engine = QueryEngine::build(
            g,
            &SketchParams { epsilon: 0.5, seed: 3, ..Default::default() },
        )
        .unwrap();
        ServePool::new(
            Arc::new(engine),
            PoolConfig { threads, queue_depth: 16, ..Default::default() },
        )
    }

    fn jobs_pool(g: &reecc_graph::Graph) -> ServePool {
        let engine = QueryEngine::build(
            g,
            &SketchParams { epsilon: 0.5, seed: 3, ..Default::default() },
        )
        .unwrap();
        ServePool::with_live_and_jobs(
            LiveEngine::ephemeral(Arc::new(engine), None),
            PoolConfig { threads: 1, queue_depth: 16, ..Default::default() },
            Some(crate::jobs::JobsConfig { max_jobs: 1, queue_depth: 4, job_dir: None }),
        )
        .unwrap()
    }

    fn job_spec(k: usize) -> crate::jobs::JobSpec {
        crate::jobs::JobSpec {
            optimizer: crate::jobs::OptimizerKind::Simple,
            source: 1,
            k,
            eps: 0.4,
            threads: 1,
            block_size: 0,
            lazy: false,
            remd: true,
            seed: 7,
        }
    }

    #[test]
    fn coalesced_flush_answers_bitwise_and_counts_once() {
        // Deterministically force coalescing: a single worker is parked
        // inside the *reply* closure of job 1 (replies run on the worker
        // thread), the queue fills behind it, and releasing the gate makes
        // the next drain pull everything in one flush.
        let g = barabasi_albert(40, 2, 9);
        let engine = Arc::new(
            QueryEngine::build(
                &g,
                &SketchParams { epsilon: 0.5, seed: 3, ..Default::default() },
            )
            .unwrap(),
        );
        let p = ServePool::new(
            Arc::clone(&engine),
            PoolConfig { threads: 1, queue_depth: 16, ..Default::default() },
        );
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (first_tx, first_rx) = mpsc::channel::<Response>();
        p.submit_with(
            env(Request::Ecc { v: 0 }),
            Box::new(move |resp| {
                gate_rx.recv().expect("gate sender lives");
                let _ = first_tx.send(resp);
            }),
        )
        .unwrap();
        // The worker increments `served` before calling the reply, so
        // served == 1 means it is parked (or about to park) in the gate.
        while p.served() < 1 {
            std::thread::yield_now();
        }
        // Duplicates included: both must miss the cold cache, share the
        // flush, and neither may be double-counted as a hit.
        let queued: Vec<usize> = vec![1, 2, 1, 3, 7];
        let rxs: Vec<_> =
            queued.iter().map(|&v| p.submit(env(Request::Ecc { v })).unwrap()).collect();
        gate_tx.send(()).unwrap();
        assert!(first_rx.recv().unwrap().is_ok());
        for (&v, rx) in queued.iter().zip(rxs) {
            let resp = rx.recv().unwrap();
            assert!(!resp.cached, "cold keys must be computed, not hit: {resp:?}");
            let want = engine.eccentricity(v);
            match resp.outcome {
                Outcome::Ecc { value, node } => {
                    assert_eq!((value, node), (want.value, want.farthest), "v={v}");
                }
                other => panic!("{other:?}"),
            }
        }
        // Warm repeats are cache hits even for the duplicated source.
        let again = p.run(env(Request::Ecc { v: 1 }));
        assert!(again.cached, "{again:?}");
        let stats = p.run(env(Request::Stats));
        match stats.outcome {
            Outcome::Stats(s) => {
                // One flush of 5 coalesced requests; the warm-up and
                // repeat queries drained solo (occupancy 1 each).
                assert_eq!(s.batched_requests, 5, "{s:?}");
                assert_eq!(s.batch_flushes, 3, "{s:?}");
                assert_eq!(s.batch_occupancy_sum, 7, "{s:?}");
                // Exactly one cache lookup per eccentricity request —
                // hits + misses must equal the 7 ecc requests served.
                // The duplicated v=1 missed *twice* (the flush's lookups
                // all precede its one insert), so coalescing never
                // mistakes a shared computation for a cache hit; the
                // only hit is the deliberate warm repeat.
                assert_eq!(s.cache_hits, 1, "{s:?}");
                assert_eq!(s.cache_misses, 6, "{s:?}");
            }
            other => panic!("{other:?}"),
        }
        let report = p.drain(Duration::from_secs(5));
        assert_eq!(report.submitted, report.answered, "{report:?}");
    }

    #[test]
    fn whatif_remove_edge_answers_caches_and_rejects_bridges() {
        use reecc_graph::generators::{cycle, line};
        let p = pool_of(&cycle(12), 2);
        let first = p.run(env(Request::WhatIfRemoveEdge { s: 6, u: 0, v: 1 }));
        assert!(first.is_ok(), "{first:?}");
        assert!(!first.cached);
        let flipped = p.run(env(Request::WhatIfRemoveEdge { s: 6, u: 1, v: 0 }));
        assert!(flipped.cached, "endpoint order must normalize: {flipped:?}");
        assert_eq!(flipped.outcome, first.outcome);
        // Removal can only increase the source's eccentricity.
        let base = p.run(env(Request::Ecc { v: 6 }));
        match (&base.outcome, &first.outcome) {
            (Outcome::Ecc { value: b, .. }, Outcome::Ecc { value: r, .. }) => {
                assert!(r >= b, "removal must not shrink eccentricity: {r} < {b}");
            }
            other => panic!("{other:?}"),
        }
        // A non-edge is a bad request, not a solve.
        let missing = p.run(env(Request::WhatIfRemoveEdge { s: 0, u: 0, v: 5 }));
        match missing.outcome {
            Outcome::Error { kind, ref message } => {
                assert_eq!(kind, ErrorKind::BadRequest);
                assert!(message.contains("not in the graph"), "{message}");
            }
            other => panic!("{other:?}"),
        }
        // A bridge is a typed rejection: the graph must stay connected.
        let p = pool_of(&line(8), 1);
        let bridge = p.run(env(Request::WhatIfRemoveEdge { s: 0, u: 3, v: 4 }));
        match bridge.outcome {
            Outcome::Error { kind, ref message } => {
                assert_eq!(kind, ErrorKind::BadRequest);
                assert!(message.contains("disconnect"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn job_ops_flow_through_the_pool_without_touching_the_queue() {
        let g = barabasi_albert(30, 2, 17);
        let p = jobs_pool(&g);
        let submitted = p.run(env(Request::OptimizeSubmit { spec: job_spec(2) }));
        let job = match submitted.outcome {
            Outcome::Job { job, state, .. } => {
                assert_eq!(state, "queued");
                job
            }
            other => panic!("{other:?}"),
        };
        let result = p.run(env(Request::OptimizeResult { job, wait: true }));
        match result.outcome {
            Outcome::JobResult { state, ref plan, .. } => {
                assert_eq!(state, "completed");
                assert_eq!(plan.len(), 2, "{plan:?}");
            }
            other => panic!("{other:?}"),
        }
        let status = p.run(env(Request::OptimizeStatus { job }));
        match status.outcome {
            Outcome::Job { state, iterations, k, .. } => {
                assert_eq!(state, "completed");
                assert_eq!((iterations, k), (2, 2));
            }
            other => panic!("{other:?}"),
        }
        // The job ops never entered the bounded worker queue.
        assert_eq!(p.shared.submitted.load(Ordering::Relaxed), 0);
        for unknown in [
            Request::OptimizeStatus { job: 999 },
            Request::OptimizeCancel { job: 999 },
            Request::OptimizeResult { job: 999, wait: false },
        ] {
            let resp = p.run(env(unknown));
            match resp.outcome {
                Outcome::Error { kind, .. } => assert_eq!(kind, ErrorKind::BadRequest),
                other => panic!("{other:?}"),
            }
        }
        let stats = p.run(env(Request::Stats));
        match stats.outcome {
            Outcome::Stats(s) => {
                assert_eq!(s.jobs_submitted, 1);
                assert_eq!(s.jobs_completed, 1);
                assert_eq!(s.jobs_running, 0);
                assert_eq!(s.jobs_failed, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn job_ops_without_a_runner_are_bad_requests() {
        let p = pool(1, 8);
        let resp = p.run(env(Request::OptimizeSubmit { spec: job_spec(1) }));
        match resp.outcome {
            Outcome::Error { kind, ref message } => {
                assert_eq!(kind, ErrorKind::BadRequest);
                assert!(message.contains("disabled"), "{message}");
            }
            other => panic!("{other:?}"),
        }
        let stats = p.run(env(Request::Stats));
        match stats.outcome {
            Outcome::Stats(s) => assert_eq!(s.jobs_submitted, 0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn drain_shuts_the_job_runner_down_with_the_pool() {
        let g = barabasi_albert(30, 2, 17);
        let p = jobs_pool(&g);
        let report = p.drain(Duration::from_secs(5));
        assert_eq!(report.dropped, 0);
        // After drain the runner refuses new jobs.
        let resp = p.jobs().unwrap().submit(job_spec(1));
        assert!(
            matches!(resp, Err(crate::jobs::JobSubmitError::Invalid(ref m)) if m.contains("shut down")),
            "{resp:?}"
        );
    }

    #[test]
    fn drain_of_an_idle_pool_is_clean_and_idempotent() {
        let p = pool(2, 8);
        assert!(p.run(env(Request::Ecc { v: 1 })).is_ok());
        let report = p.drain(Duration::from_secs(5));
        assert_eq!(report.submitted, 1);
        assert_eq!(report.answered, 1);
        assert_eq!(report.dropped, 0);
        // After drain, submissions are refused as draining.
        let resp = p.run(env(Request::Ecc { v: 2 }));
        match resp.outcome {
            Outcome::Error { kind, .. } => assert_eq!(kind, ErrorKind::Draining),
            other => panic!("{other:?}"),
        }
        let again = p.drain(Duration::from_secs(5));
        assert_eq!((again.submitted, again.answered, again.dropped), (1, 1, 0));
    }
}
