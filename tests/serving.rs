//! End-to-end tests for the serving subsystem: snapshot persistence,
//! pipe-mode protocol sessions against ground truth, and pool
//! backpressure under a deliberately tiny queue.

use std::io::BufReader;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use reecc_core::{exact_query, ExactResistance, QueryEngine, SketchParams};
use reecc_graph::generators::barabasi_albert;
use reecc_graph::{fingerprint, Graph};
use reecc_serve::json::Json;
use reecc_serve::{
    serve_pipe, LiveConfig, LiveEngine, PoolConfig, Request, RequestEnvelope, ServePool,
    SketchSnapshot, SnapshotError, SubmitError, TcpServer,
};

const N: usize = 200;
const EPS: f64 = 0.3;

fn graph() -> &'static Graph {
    static GRAPH: OnceLock<Graph> = OnceLock::new();
    GRAPH.get_or_init(|| barabasi_albert(N, 2, 1234))
}

/// One engine shared by every test in this file: the sketch build is the
/// expensive part (`d ≈ 24 ln n / ε²` CG solves) and is identical for all.
fn engine() -> Arc<QueryEngine> {
    static ENGINE: OnceLock<Arc<QueryEngine>> = OnceLock::new();
    Arc::clone(ENGINE.get_or_init(|| {
        Arc::new(
            QueryEngine::build(
                graph(),
                &SketchParams { epsilon: EPS, seed: 99, ..Default::default() },
            )
            .expect("BA graph is connected"),
        )
    }))
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("reecc-serving-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn snapshot_roundtrip_serves_queries_without_rebuilding() {
    let engine = engine();
    let path = temp_path("roundtrip.sketch");
    let snap = SketchSnapshot::from_engine(&engine);
    snap.save(&path).unwrap();

    let restored = SketchSnapshot::load(&path).unwrap().into_engine(graph()).unwrap();
    // The restored engine is byte-identical in behavior: same sketch rows,
    // same hull, so identical answers — not merely within ε.
    for v in [0, 17, 99, N - 1] {
        let a = engine.eccentricity(v);
        let b = restored.eccentricity(v);
        assert_eq!((a.value, a.farthest), (b.value, b.farthest), "v = {v}");
    }
    // And the answers themselves respect the sketch guarantee.
    let exact = exact_query(graph(), &[0, 17]).unwrap();
    for (v, c) in exact {
        let got = restored.eccentricity(v).value;
        assert!((got - c).abs() <= EPS * c + 1e-9, "c({v}): {got} vs exact {c}");
    }
}

#[test]
fn corrupting_any_byte_is_a_checksum_error_not_garbage() {
    let bytes = SketchSnapshot::from_engine(&engine()).to_bytes();
    // Flip one byte in the middle of the row payload.
    let mut corrupted = bytes.clone();
    let mid = bytes.len() / 2;
    corrupted[mid] ^= 0x40;
    match SketchSnapshot::from_bytes(&corrupted) {
        Err(SnapshotError::ChecksumMismatch { stored, computed }) => {
            assert_ne!(stored, computed);
        }
        other => panic!("expected checksum mismatch, got {other:?}"),
    }
    // A snapshot for a *different* graph fails differently: fingerprints,
    // not checksums, so operators can tell corruption from wrong pairing.
    let other_graph = barabasi_albert(N, 2, 4321);
    let err =
        SketchSnapshot::from_bytes(&bytes).unwrap().into_engine(&other_graph).unwrap_err();
    assert!(
        matches!(err, SnapshotError::FingerprintMismatch { .. }),
        "wrong graph must be a fingerprint error, got {err:?}"
    );
}

fn render_request(i: usize) -> String {
    match i % 5 {
        0 => format!("{{\"op\":\"ecc\",\"v\":{},\"id\":{i}}}", (i * 13) % N),
        1 => format!(
            "{{\"op\":\"res\",\"u\":{},\"v\":{},\"id\":{i}}}",
            (i * 7) % N,
            (i * 11 + 1) % N
        ),
        2 => format!("{{\"op\":\"radius\",\"id\":{i}}}"),
        3 => format!("{{\"op\":\"diameter\",\"id\":{i}}}"),
        _ => format!("{{\"op\":\"stats\",\"id\":{i}}}"),
    }
}

#[test]
fn pipe_session_of_100_mixed_ops_matches_ground_truth() {
    let pool = ServePool::new(engine(), PoolConfig { threads: 4, ..Default::default() });
    let mut input = String::new();
    for i in 0..100 {
        // Skip the res self-pair the schedule would hit (u == v).
        let line = render_request(i);
        input.push_str(&line);
        input.push('\n');
    }
    let mut output = Vec::new();
    let stats = serve_pipe(&pool, BufReader::new(input.as_bytes()), &mut output).unwrap();
    assert_eq!(stats.requests, 100);
    assert_eq!(stats.errors, 0, "{}", String::from_utf8_lossy(&output));

    let exact = ExactResistance::new(graph()).unwrap();
    let exact_dist = exact.eccentricity_distribution();
    let (radius, diameter) = (exact_dist.radius(), exact_dist.diameter());
    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 100, "one response line per request");
    for (i, line) in lines.iter().enumerate() {
        let json = Json::parse(line).unwrap_or_else(|e| panic!("line {i} not JSON: {e}"));
        assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true), "{line}");
        assert_eq!(json.get("id").and_then(Json::as_usize), Some(i), "{line}");
        let value = json.get("value").and_then(Json::as_f64);
        match i % 5 {
            0 => {
                let v = (i * 13) % N;
                let c = exact.eccentricity(v).0;
                let got = value.unwrap();
                assert!((got - c).abs() <= EPS * c + 1e-9, "c({v}): {got} vs {c}");
                assert_eq!(json.get("tier").and_then(Json::as_str), Some("fast"), "{line}");
            }
            1 => {
                let (u, v) = ((i * 7) % N, (i * 11 + 1) % N);
                let r = exact.resistance(u, v);
                let got = value.unwrap();
                assert!((got - r).abs() <= EPS * r + 1e-9, "r({u},{v}): {got} vs {r}");
            }
            2 => {
                let got = value.unwrap();
                assert!(
                    (got - radius).abs() <= EPS * radius + 1e-9,
                    "radius: {got} vs {radius}"
                );
            }
            3 => {
                let got = value.unwrap();
                assert!(
                    (got - diameter).abs() <= EPS * diameter + 1e-9,
                    "diameter: {got} vs {diameter}"
                );
            }
            _ => {
                assert_eq!(json.get("nodes").and_then(Json::as_usize), Some(N), "{line}");
            }
        }
    }
}

#[test]
fn depth_one_queue_rejects_instead_of_blocking() {
    let pool = ServePool::new(
        engine(),
        PoolConfig { threads: 1, queue_depth: 1, ..Default::default() },
    );
    // Occupy the single worker with the O(n · l · d) radius sweep ...
    let busy = pool
        .submit(RequestEnvelope { id: None, deadline_ms: None, request: Request::Radius })
        .unwrap();
    // ... then flood. Submission must return immediately either way; with
    // the worker busy, at most one request fits the queue.
    let started = std::time::Instant::now();
    let mut overloaded = 0;
    let mut accepted = Vec::new();
    for v in 0..24 {
        match pool.submit(RequestEnvelope {
            id: None,
            deadline_ms: None,
            request: Request::Ecc { v },
        }) {
            Ok(rx) => accepted.push(rx),
            Err(SubmitError::Overloaded { depth }) => {
                assert_eq!(depth, 1);
                overloaded += 1;
            }
            Err(e) => panic!("{e:?}"),
        }
    }
    let elapsed = started.elapsed();
    assert!(overloaded >= 1, "a depth-1 queue under flood must shed load");
    assert!(
        elapsed < std::time::Duration::from_millis(250),
        "24 submissions must not block on the busy worker: took {elapsed:?}"
    );
    assert!(busy.recv().unwrap().is_ok());
    for rx in accepted {
        assert!(rx.recv().unwrap().is_ok(), "accepted requests still complete");
    }
}

#[test]
fn tcp_server_answers_concurrent_clients_consistently() {
    use std::io::{BufRead, Write};

    let pool =
        Arc::new(ServePool::new(engine(), PoolConfig { threads: 4, ..Default::default() }));
    let server = TcpServer::start(Arc::clone(&pool), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let expected = engine().eccentricity(7).value;

    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let stream = std::net::TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut stream = stream;
                let mut values = Vec::new();
                for _ in 0..8 {
                    writeln!(stream, "{{\"op\":\"ecc\",\"v\":7}}").unwrap();
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    let json = Json::parse(&line).unwrap();
                    assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true), "{line}");
                    values.push(json.get("value").and_then(Json::as_f64).unwrap());
                }
                values
            })
        })
        .collect();
    for handle in handles {
        for value in handle.join().unwrap() {
            assert!(
                (value - expected).abs() < 1e-12,
                "every client must see the same cached answer: {value} vs {expected}"
            );
        }
    }
    assert!(pool.served() >= 32);
}

#[test]
fn stats_wire_reports_transport_counters() {
    use std::io::{BufRead, Write};
    use std::time::Duration;

    let pool =
        Arc::new(ServePool::new(engine(), PoolConfig { threads: 2, ..Default::default() }));
    let config = reecc_serve::ServerConfig {
        max_connections: 1,
        poll_interval: Duration::from_millis(5),
        ..Default::default()
    };
    let server = TcpServer::start_with(Arc::clone(&pool), "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    // One admitted session does a round trip (so bytes flow both ways) ...
    let stream = std::net::TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writeln!(writer, "{{\"op\":\"ecc\",\"v\":7,\"id\":0}}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":true"), "{line}");

    // ... and a second connection is shed past the cap, bumping the
    // shed counter before its goodbye line is even delivered.
    let shed = std::net::TcpStream::connect(addr).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut shed_reader = BufReader::new(shed);
    let mut shed_line = String::new();
    shed_reader.read_line(&mut shed_line).unwrap();
    assert!(shed_line.contains("\"error\":\"overloaded\""), "{shed_line}");

    // The transport block rides the same `stats` op as everything else.
    writeln!(writer, "{{\"op\":\"stats\",\"id\":1}}").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    let json = Json::parse(&line).unwrap();
    let counter = |k: &str| {
        json.get(k).and_then(Json::as_usize).unwrap_or_else(|| panic!("missing {k}: {line}"))
    };
    assert!(counter("connections_accepted") >= 2, "{line}");
    assert_eq!(counter("connections_active"), 1, "{line}");
    assert_eq!(counter("connections_shed"), 1, "{line}");
    assert_eq!(counter("connections_timed_out"), 0, "{line}");
    assert!(counter("bytes_read") > 0, "{line}");
    assert!(counter("bytes_written") > 0, "{line}");
    assert_eq!(counter("write_buffer_sheds"), 0, "{line}");

    // The in-process view agrees with the wire.
    let snap = server.stats().snapshot();
    assert_eq!(snap.connections_shed, 1);
    assert_eq!(server.live_sessions(), 1);
}

#[test]
fn expired_deadline_is_never_computed() {
    let pool = ServePool::new(
        engine(),
        PoolConfig { threads: 1, queue_depth: 8, ..Default::default() },
    );
    let busy = pool
        .submit(RequestEnvelope { id: None, deadline_ms: None, request: Request::Diameter })
        .unwrap();
    let dated = pool.run(RequestEnvelope {
        id: Some(1),
        deadline_ms: Some(0),
        request: Request::Ecc { v: 3 },
    });
    assert!(!dated.is_ok());
    assert!(dated.render().contains("deadline-exceeded"), "{}", dated.render());
    assert!(busy.recv().unwrap().is_ok());
}

/// First (u, v) pair that is not an edge of the shared test graph — a
/// mutation target that `add-edge` is guaranteed to accept.
fn absent_pair() -> (usize, usize) {
    let g = graph();
    (0..N)
        .flat_map(|a| (a + 1..N).map(move |b| (a, b)))
        .find(|&(a, b)| !g.has_edge(a, b))
        .expect("BA(200, 2) is sparse")
}

#[test]
fn stats_wire_reports_live_mutation_fields() {
    // A huge explicit budget keeps the session deterministic: no background
    // re-sketch can kick in and race the field assertions.
    let live = LiveEngine::ephemeral(engine(), Some(64.0));
    let pool = ServePool::with_live(live, PoolConfig { threads: 2, ..Default::default() });
    let (u, v) = absent_pair();
    let input = format!(
        "{{\"op\":\"stats\",\"id\":0}}\n\
         {{\"op\":\"add-edge\",\"u\":{u},\"v\":{v},\"id\":1}}\n\
         {{\"op\":\"stats\",\"id\":2}}\n\
         {{\"op\":\"epoch\",\"id\":3}}\n"
    );
    let mut output = Vec::new();
    let stats = serve_pipe(&pool, BufReader::new(input.as_bytes()), &mut output).unwrap();
    assert_eq!((stats.requests, stats.errors), (4, 0), "{}", String::from_utf8_lossy(&output));
    let text = String::from_utf8(output).unwrap();
    let lines: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();

    // Pristine stats: epoch 0, nothing applied, full budget, no WAL.
    let field =
        |j: &Json, k: &str| j.get(k).and_then(Json::as_f64).unwrap_or_else(|| panic!("{k}"));
    assert_eq!(field(&lines[0], "epoch"), 0.0);
    assert_eq!(field(&lines[0], "mutations_applied"), 0.0);
    assert_eq!(field(&lines[0], "error_budget_remaining"), 64.0);
    assert_eq!(field(&lines[0], "resketches_total"), 0.0);
    assert_eq!(field(&lines[0], "wal_bytes"), 0.0);
    assert_eq!(field(&lines[0], "wal_replayed_on_start"), 0.0);

    // The mutation ack carries the resistance, its budget charge, and seq 0.
    assert_eq!(lines[1].get("ok").and_then(Json::as_bool), Some(true), "{}", text);
    let r_uv = field(&lines[1], "r_uv");
    let cost = field(&lines[1], "cost");
    assert!(r_uv > 0.0 && cost > 0.0 && cost < 1.0, "add cost r/(1+r): r={r_uv} cost={cost}");
    assert!((cost - r_uv / (1.0 + r_uv)).abs() < 1e-12);
    assert_eq!(field(&lines[1], "seq"), 0.0);
    assert_eq!(lines[1].get("resketch").and_then(Json::as_bool), Some(false));

    // Post-mutation stats: counter bumped, budget charged, still epoch 0,
    // and wal_bytes stays 0 because this live engine is ephemeral.
    assert_eq!(field(&lines[2], "mutations_applied"), 1.0);
    assert!((field(&lines[2], "error_budget_remaining") - (64.0 - cost)).abs() < 1e-9);
    assert_eq!(field(&lines[2], "epoch"), 0.0);
    assert_eq!(field(&lines[2], "resketches_total"), 0.0);
    assert_eq!(field(&lines[2], "wal_bytes"), 0.0);

    // The epoch op agrees with stats.
    assert_eq!(field(&lines[3], "epoch"), 0.0);
    assert_eq!(field(&lines[3], "mutations_in_epoch"), 1.0);
    assert_eq!(field(&lines[3], "budget_total"), 64.0);
    assert_eq!(lines[3].get("resketch_running").and_then(Json::as_bool), Some(false));
}

#[test]
fn wal_backed_pipe_session_recovers_after_restart() {
    let dir = temp_path("wal-session");
    let _ = std::fs::remove_dir_all(&dir);
    let config = LiveConfig { wal_dir: Some(dir.clone()), error_budget: Some(64.0) };
    let (live, recovered) = LiveEngine::open(engine(), &config).unwrap();
    assert!(!recovered, "fresh dir must bootstrap, not recover");
    let pool = ServePool::with_live(live, PoolConfig { threads: 2, ..Default::default() });

    let g = graph();
    let mut absent = (0..N)
        .flat_map(|a| (a + 1..N).map(move |b| (a, b)))
        .filter(|&(a, b)| !g.has_edge(a, b));
    let (u1, v1) = absent.next().unwrap();
    let (u2, v2) = absent.next().unwrap();
    // Add two edges, then remove the first: the removal can never be a
    // disconnecting bridge (the base graph was already connected without
    // it), so every mutation in the session is accepted deterministically.
    let input = format!(
        "{{\"op\":\"add-edge\",\"u\":{u1},\"v\":{v1},\"id\":0}}\n\
         {{\"op\":\"add-edge\",\"u\":{u2},\"v\":{v2},\"id\":1}}\n\
         {{\"op\":\"remove-edge\",\"u\":{u1},\"v\":{v1},\"id\":2}}\n\
         {{\"op\":\"res\",\"u\":{u2},\"v\":{v2},\"id\":3}}\n\
         {{\"op\":\"stats\",\"id\":4}}\n"
    );
    let mut output = Vec::new();
    let stats = serve_pipe(&pool, BufReader::new(input.as_bytes()), &mut output).unwrap();
    let text = String::from_utf8(output).unwrap();
    assert_eq!((stats.requests, stats.errors), (5, 0), "{text}");
    let lines: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
    let served_res = lines[3].get("value").and_then(Json::as_f64).unwrap();
    // Three fsynced records on top of the 28-byte header.
    let expected_bytes =
        (reecc_serve::wal::HEADER_LEN + 3 * reecc_serve::wal::RECORD_LEN) as f64;
    assert_eq!(
        lines[4].get("wal_bytes").and_then(Json::as_f64),
        Some(expected_bytes),
        "{text}"
    );

    // Simulate a crash: drop the pool without any snapshot/rotation step,
    // then restart from the directory alone.
    drop(pool);
    let restarted = LiveEngine::recover(&dir, Some(64.0)).unwrap();
    assert_eq!(restarted.wal_replayed_on_start(), 3);
    let (u, v) = (u2, v2);
    let replayed = restarted.view().engine.resistance(u, v);
    assert_eq!(
        replayed.to_bits(),
        served_res.to_bits(),
        "replay must reproduce the served answer bitwise: {replayed} vs {served_res}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_replay_is_bitwise_whatever_solver_flags_each_side_ran_with() {
    // Durable mutations pin their CG config precisely so that a session
    // serving under `--precision mixed --precond cheby` and a recovery
    // under different (or default) flags replay to the same bits. Apply
    // mutations on a mixed+cheby engine live, then recover once with no
    // solver selection and once with the mixed+cheby selection: all
    // three states must agree bitwise.
    let dir = temp_path("wal-solver-flags");
    let _ = std::fs::remove_dir_all(&dir);
    let mut tuned = SketchParams { epsilon: EPS, seed: 99, ..Default::default() };
    tuned.precision = reecc_core::Precision::Mixed;
    tuned.cg.preconditioner =
        reecc_core::Preconditioner::Chebyshev(reecc_core::ChebyshevConfig::default());
    let built = Arc::new(QueryEngine::build(graph(), &tuned).expect("BA graph is connected"));
    let config = LiveConfig { wal_dir: Some(dir.clone()), error_budget: Some(64.0) };
    let (live, recovered) = LiveEngine::open(Arc::clone(&built), &config).unwrap();
    assert!(!recovered);

    let g = graph();
    let mut absent = (0..N)
        .flat_map(|a| (a + 1..N).map(move |b| (a, b)))
        .filter(|&(a, b)| !g.has_edge(a, b));
    let (u1, v1) = absent.next().unwrap();
    let (u2, v2) = absent.next().unwrap();
    live.apply_mutation(reecc_serve::wal::WalOp::AddEdge, u1, v1).unwrap();
    live.apply_mutation(reecc_serve::wal::WalOp::AddEdge, u2, v2).unwrap();
    live.apply_mutation(reecc_serve::wal::WalOp::RemoveEdge, u1, v1).unwrap();
    let served = live.view().engine.resistance(u2, v2);

    for solver in [None, Some(&tuned)] {
        let restarted = LiveEngine::recover_with_solver(&dir, Some(64.0), solver).unwrap();
        assert_eq!(restarted.wal_replayed_on_start(), 3);
        let replayed = restarted.view().engine.resistance(u2, v2);
        assert_eq!(
            replayed.to_bits(),
            served.to_bits(),
            "solver={:?}: replay must be flag-independent: {replayed} vs {served}",
            solver.is_some()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panel_rebuilds_on_epoch_swap_and_answers_identically() {
    // A drained error budget kicks the background re-sketch; the swapped
    // epoch publishes a *new* engine whose hull panel must be packed from
    // the fresh embeddings. The panel-backed answer has to match a
    // by-hand gather over the same engine's sketch and hull bitwise —
    // a stale panel (old epoch's embeddings) would diverge.
    let live = LiveEngine::ephemeral(engine(), Some(1e-9));
    let before = live.view();
    assert_eq!(before.tier, reecc_core::QueryTier::Fast);
    let (u, v) = absent_pair();
    let receipt = live.apply_mutation(reecc_serve::wal::WalOp::AddEdge, u, v).unwrap();
    assert!(receipt.resketch_kicked, "a 1e-9 budget must drain on the first mutation");
    // The mutated pre-swap view serves the approx tier (stale hull).
    assert_eq!(live.view().tier, reecc_core::QueryTier::Approx);
    live.join_resketch();
    let after = live.view();
    assert_eq!(after.tier, reecc_core::QueryTier::Fast, "re-sketch restores the fast tier");
    assert_ne!(after.fingerprint, before.fingerprint);
    for s in [0usize, 17, 99, N - 1] {
        let ans = after.engine.eccentricity(s);
        let (want_c, want_f) = after.engine.sketch().eccentricity_over(s, after.engine.hull());
        assert_eq!(
            (ans.value.to_bits(), ans.farthest),
            (want_c.to_bits(), want_f),
            "s={s}: swapped epoch serves a stale panel"
        );
        // And the swap genuinely changed the answer surface: the new
        // engine is not the old one with a relabeled panel.
        let old = before.engine.eccentricity(s);
        assert!(ans.value.is_finite() && old.value.is_finite());
    }
}

#[test]
fn coalesced_requests_never_double_count_cache_hits() {
    use reecc_serve::protocol::Outcome;
    // Counter-drift guard for serve-side request coalescing: park the
    // single worker inside a reply closure, queue an eccentricity-family
    // mix with duplicates (plus the radius/diameter pair, which a single
    // flush answers from one shared sweep), release, and audit every
    // counter against first principles.
    let engine = engine();
    let pool = ServePool::new(
        Arc::clone(&engine),
        PoolConfig { threads: 1, queue_depth: 32, ..Default::default() },
    );
    let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
    let (first_tx, first_rx) = std::sync::mpsc::channel();
    pool.submit_with(
        RequestEnvelope { id: None, deadline_ms: None, request: Request::Ecc { v: 5 } },
        Box::new(move |resp| {
            gate_rx.recv().expect("gate sender lives");
            let _ = first_tx.send(resp);
        }),
    )
    .unwrap();
    while pool.served() < 1 {
        std::thread::yield_now();
    }
    // 6 queued jobs, one flush (window default 8): ecc {7, 7, 42, 5},
    // radius, diameter. Key space: Ecc{5} was cached by the parked
    // warm-up job BEFORE these lookups run, so it is the flush's only
    // hit; Ecc{7} is looked up twice before its single insert — two
    // misses sharing one computation, never a fabricated hit.
    let queued = [
        Request::Ecc { v: 7 },
        Request::Ecc { v: 7 },
        Request::Ecc { v: 42 },
        Request::Ecc { v: 5 },
        Request::Radius,
        Request::Diameter,
    ];
    let rxs: Vec<_> = queued
        .iter()
        .map(|r| {
            pool.submit(RequestEnvelope { id: None, deadline_ms: None, request: *r }).unwrap()
        })
        .collect();
    gate_tx.send(()).unwrap();
    assert!(first_rx.recv().unwrap().is_ok());
    let mut values = Vec::new();
    for (request, rx) in queued.iter().zip(rxs) {
        let resp = rx.recv().unwrap();
        assert!(resp.is_ok(), "{request:?}: {resp:?}");
        values.push(resp);
    }
    // Batched ecc answers are bitwise the scalar engine answers.
    for (i, v) in [(0usize, 7usize), (1, 7), (2, 42), (3, 5)] {
        let want = engine.eccentricity(v);
        match values[i].outcome {
            Outcome::Ecc { value, node } => {
                assert_eq!((value.to_bits(), node), (want.value.to_bits(), want.farthest));
            }
            ref other => panic!("{other:?}"),
        }
    }
    assert!(values[3].cached, "Ecc{{5}} was cached by the warm-up job");
    // Radius <= diameter, both from the same flush's one shared sweep.
    match (&values[4].outcome, &values[5].outcome) {
        (Outcome::Ecc { value: r, .. }, Outcome::Ecc { value: d, .. }) => {
            assert!(r <= d, "radius {r} vs diameter {d}")
        }
        other => panic!("{other:?}"),
    }
    let stats =
        pool.run(RequestEnvelope { id: None, deadline_ms: None, request: Request::Stats });
    match stats.outcome {
        Outcome::Stats(s) => {
            // 7 cacheable requests → exactly 7 lookups, no drift: the
            // warm-up miss, then in the flush one hit (Ecc 5) and five
            // misses (7, 7, 42, radius, diameter).
            assert_eq!(s.cache_hits + s.cache_misses, 7, "{s:?}");
            assert_eq!(s.cache_hits, 1, "{s:?}");
            assert_eq!(s.batched_requests, 6, "{s:?}");
            assert_eq!(s.batch_flushes, 2, "warm-up solo + the flush: {s:?}");
            assert_eq!(s.batch_occupancy_sum, 7, "{s:?}");
        }
        other => panic!("{other:?}"),
    }
    let report = pool.drain(std::time::Duration::from_secs(10));
    assert_eq!(report.submitted, report.answered, "{report:?}");
    assert_eq!(report.panics, 0);
}

#[test]
fn snapshot_fingerprint_is_representation_level() {
    // The snapshot key is fingerprint(graph): the same edge list loads,
    // a relabeled isomorph does not. This is by design — sketch rows are
    // indexed by node id, so an isomorph's ids would scramble answers.
    let g = graph();
    let clone =
        Graph::from_edges(g.node_count(), g.edges().iter().map(|e| (e.u, e.v))).unwrap();
    assert_eq!(fingerprint(g), fingerprint(&clone));
}

#[test]
fn pre_rework_golden_snapshot_still_loads_and_answers() {
    // Regression guard for the flat node-major sketch-storage rework: the
    // checked-in golden snapshot was produced by the PRE-rework code
    // (row-major `Vec<Vec<f64>>` storage, scalar per-row CG). It must keep
    // loading byte-for-byte, and — because the blocked kernels are bitwise
    // identical to the old scalar path — rebuilding with the same
    // parameters must reproduce the golden bytes exactly.
    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/pre_flat_rework.sketch");
    let bytes = std::fs::read(&golden_path).expect("golden snapshot is checked in");
    let snap = SketchSnapshot::from_bytes(&bytes).expect("golden snapshot parses");

    // Generation recipe (recorded so the golden file can be regenerated):
    let g = barabasi_albert(40, 2, 9);
    let params =
        SketchParams { epsilon: 0.4, max_dimension: Some(64), seed: 3, ..Default::default() };
    let engine = snap.into_engine(&g).expect("golden snapshot pairs with its graph");

    // Loaded engine answers within the sketch guarantee against exact.
    let nodes: Vec<usize> = (0..g.node_count()).step_by(7).collect();
    let exact = exact_query(&g, &nodes).unwrap();
    for (v, c) in exact {
        let got = engine.eccentricity(v).value;
        assert!((got - c).abs() <= 0.4 * c + 1e-9, "c({v}): {got} vs exact {c}");
    }

    // Bitwise build-compatibility: today's blocked build serializes to the
    // exact bytes the pre-rework scalar build wrote.
    let rebuilt = QueryEngine::build(&g, &params).unwrap();
    let rebuilt_bytes = SketchSnapshot::from_engine(&rebuilt).to_bytes();
    assert_eq!(rebuilt_bytes, bytes, "snapshot byte format or sketch bits drifted");
}

#[test]
fn snapshot_format_is_precision_agnostic() {
    // The v1 snapshot stores f64 rows regardless of the arithmetic that
    // produced them: a mixed-precision build serializes in the exact same
    // format (same header prefix as an f64-built snapshot of the same
    // sketch shape), round-trips byte-for-byte, and is byte-identical no
    // matter which threads × block_size combination built it.
    let g = barabasi_albert(40, 2, 9);
    let f64_params =
        SketchParams { epsilon: 0.4, max_dimension: Some(64), seed: 3, ..Default::default() };
    let mut mixed_params = f64_params;
    mixed_params.precision = reecc_core::Precision::Mixed;
    mixed_params.cg.preconditioner =
        reecc_core::Preconditioner::Chebyshev(reecc_core::ChebyshevConfig::default());

    let f64_bytes =
        SketchSnapshot::from_engine(&QueryEngine::build(&g, &f64_params).unwrap()).to_bytes();
    let mixed_engine = QueryEngine::build(&g, &mixed_params).unwrap();
    let mixed_bytes = SketchSnapshot::from_engine(&mixed_engine).to_bytes();

    // Same container: identical length and identical leading header (the
    // first bytes before sketch data diverges numerically). 16 bytes
    // covers magic + version + shape fields without tying the test to the
    // exact layout.
    assert_eq!(mixed_bytes.len(), f64_bytes.len(), "precision changed the v1 layout");
    assert_eq!(&mixed_bytes[..16], &f64_bytes[..16], "precision leaked into the header");

    // Round trip: load → re-serialize reproduces the bytes exactly, and
    // the loaded engine answers like the in-memory one.
    let snap = SketchSnapshot::from_bytes(&mixed_bytes).expect("mixed snapshot parses");
    let loaded = snap.into_engine(&g).expect("mixed snapshot pairs with its graph");
    assert_eq!(
        SketchSnapshot::from_engine(&loaded).to_bytes(),
        mixed_bytes,
        "mixed snapshot does not round-trip byte-for-byte"
    );
    for v in (0..g.node_count()).step_by(7) {
        assert_eq!(
            loaded.eccentricity(v).value.to_bits(),
            mixed_engine.eccentricity(v).value.to_bits()
        );
    }

    // Build determinism carries into the serialized artifact.
    for (threads, block_size) in [(4usize, 0usize), (2, 4), (1, 8)] {
        let combo = SketchParams { threads, block_size, ..mixed_params };
        let rebuilt = QueryEngine::build(&g, &combo).unwrap();
        assert_eq!(
            SketchSnapshot::from_engine(&rebuilt).to_bytes(),
            mixed_bytes,
            "mixed snapshot differs at threads={threads} block_size={block_size}"
        );
    }
}
