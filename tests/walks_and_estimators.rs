//! Integration: random-walk metrics, comparator estimators and spectral
//! bounds cross-validated against the exact pipeline on dataset analogs.

use reecc_core::estimators::{
    commute_time_resistance, spanning_edge_centrality, WalkEstimatorOptions,
};
use reecc_core::walks::{
    commute_time, hitting_time, kemeny_constant, kemeny_constant_estimate,
};
use reecc_core::{CoreError, ExactResistance, QueryEngine, ResistanceSketch, SketchParams};
use reecc_datasets::{preprocess, Dataset, Tier};
use reecc_graph::connectivity::bridges;
use reecc_graph::generators::{barabasi_albert, power_law_configuration};
use reecc_graph::kcore::core_numbers;
use reecc_graph::spanning::{is_spanning_tree, wilson_spanning_tree};
use reecc_graph::traversal::largest_connected_component;
use reecc_linalg::eigen::{
    lambda2_estimate, lambda_max_estimate, resistance_bounds, EigenOptions,
};
use reecc_linalg::LaplacianOp;

fn analog() -> reecc_graph::Graph {
    preprocess(&Dataset::EmailUn.synthesize(Tier::Ci))
}

#[test]
fn spectral_bounds_hold_on_analog() {
    let g = analog();
    let op = LaplacianOp::new(&g);
    let l2 = lambda2_estimate(&op, EigenOptions::default());
    let lmax = lambda_max_estimate(&op, EigenOptions::default());
    assert!(l2.converged && lmax.converged);
    let (lower, upper) = resistance_bounds(l2.value, lmax.value);
    let exact = ExactResistance::new(&g).unwrap();
    for (u, v) in [(0usize, 1usize), (0, g.node_count() - 1), (5, 200)] {
        let r = exact.resistance(u, v);
        assert!(r >= lower - 1e-9, "r({u},{v}) = {r} < lower {lower}");
        assert!(r <= upper + 1e-9, "r({u},{v}) = {r} > upper {upper}");
    }
    // The resistance diameter also respects the upper bound.
    let dist = exact.eccentricity_distribution();
    assert!(dist.diameter() <= upper + 1e-9);
}

#[test]
fn kemeny_constant_consistency_on_analog() {
    let g = analog();
    let exact_oracle = ExactResistance::new(&g).unwrap();
    let k_exact = kemeny_constant(&exact_oracle, &g);
    assert!(k_exact > 0.0);
    // Kemeny lower bound: K >= n - 1 ... not in general for multigraphs;
    // use the universal bound K >= (n-1)/2 instead (holds for reversible
    // chains), and an upper sanity bound via max hitting time.
    let n = g.node_count() as f64;
    assert!(k_exact >= (n - 1.0) / 2.0, "K = {k_exact}");
    let sketch = ResistanceSketch::build(
        &g,
        &SketchParams { epsilon: 0.2, seed: 4, ..Default::default() },
    )
    .unwrap();
    let k_est = kemeny_constant_estimate(&sketch, &g, 6000, 11);
    assert!((k_est - k_exact).abs() / k_exact < 0.1, "estimate {k_est} vs exact {k_exact}");
}

#[test]
fn hitting_times_triangle_inequality_and_commute_identity() {
    let g = barabasi_albert(40, 2, 13);
    let exact = ExactResistance::new(&g).unwrap();
    for (u, v) in [(0usize, 39usize), (3, 20)] {
        let c = commute_time(&exact, &g, u, v);
        assert!(
            (c - hitting_time(&exact, &g, u, v) - hitting_time(&exact, &g, v, u)).abs() < 1e-6
        );
        assert!((c - 2.0 * g.edge_count() as f64 * exact.resistance(u, v)).abs() < 1e-6);
    }
}

#[test]
fn ust_estimator_agrees_with_sketch_on_edges() {
    let g = preprocess(&Dataset::UnicodeLanguage.synthesize(Tier::Ci));
    let sketch = ResistanceSketch::build(
        &g,
        &SketchParams { epsilon: 0.25, seed: 9, ..Default::default() },
    )
    .unwrap();
    let ust = spanning_edge_centrality(&g, 600, 17).unwrap();
    let mut mean_gap = 0.0;
    for (&e, &r_ust) in &ust {
        mean_gap += (sketch.resistance(e.u, e.v) - r_ust).abs();
    }
    mean_gap /= ust.len() as f64;
    assert!(mean_gap < 0.06, "mean gap between estimators: {mean_gap}");
}

#[test]
fn walk_estimator_consistent_on_analog_pair() {
    let g = preprocess(&Dataset::UnicodeLanguage.synthesize(Tier::Ci));
    let exact = ExactResistance::new(&g).unwrap();
    let (u, v) = (0usize, g.node_count() - 1);
    let r_hat = commute_time_resistance(
        &g,
        u,
        v,
        WalkEstimatorOptions { samples: 800, seed: 3, ..Default::default() },
    )
    .unwrap();
    let r = exact.resistance(u, v);
    assert!((r_hat - r).abs() < 0.25 * r.max(0.5), "{r_hat} vs {r}");
}

#[test]
fn bridge_edges_have_unit_resistance_on_analog() {
    // The pendant periphery of every analog guarantees bridges exist;
    // each must have exact resistance 1 (the electrical characterization
    // backing pinv_remove_edge's guard).
    let g = analog();
    let exact = ExactResistance::new(&g).unwrap();
    let bs = bridges(&g);
    assert!(!bs.is_empty(), "analogs have pendant chains, hence bridges");
    for e in bs.iter().take(20) {
        let r = exact.resistance(e.u, e.v);
        assert!((r - 1.0).abs() < 1e-9, "bridge {e:?} has r = {r}");
    }
    // Non-bridge edges have r < 1 strictly.
    let bridge_set: std::collections::HashSet<_> = bs.into_iter().collect();
    let non_bridge = g.edges().iter().find(|e| !bridge_set.contains(e)).unwrap();
    assert!(exact.resistance(non_bridge.u, non_bridge.v) < 1.0 - 1e-9);
}

#[test]
fn core_numbers_track_eccentricity_inversely() {
    // High-core nodes (dense nucleus) should have smaller resistance
    // eccentricity on average than 1-core nodes (the pendant fringe).
    let g = analog();
    let core = core_numbers(&g);
    let dist = ExactResistance::new(&g).unwrap().eccentricity_distribution();
    let kmax = core.iter().copied().max().unwrap();
    assert!(kmax >= 2, "analog core should be non-trivial");
    let mean_of = |pred: &dyn Fn(usize) -> bool| -> f64 {
        let vals: Vec<f64> =
            (0..g.node_count()).filter(|&v| pred(v)).map(|v| dist.get(v)).collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    let fringe = mean_of(&|v| core[v] <= 1);
    let nucleus = mean_of(&|v| core[v] == kmax);
    assert!(nucleus < fringe, "nucleus mean ecc {nucleus} should be below fringe {fringe}");
}

#[test]
fn wilson_trees_valid_on_configuration_model_lcc() {
    let raw = power_law_configuration(800, 2.5, 2, 28, 5);
    let (lcc, _) = largest_connected_component(&raw);
    assert!(lcc.node_count() > 400);
    let t = wilson_spanning_tree(&lcc, 21);
    assert!(is_spanning_tree(&lcc, &t));
}

#[test]
fn ust_centrality_converges_to_exact_and_is_seed_deterministic() {
    // Monte-Carlo consistency: with a fixed seed the estimator is a pure
    // function, and its error against the exact edge resistances shrinks
    // as the sample count grows.
    let g = barabasi_albert(40, 2, 13);
    let exact = ExactResistance::new(&g).unwrap();
    let mean_err = |samples: usize| -> f64 {
        let est = spanning_edge_centrality(&g, samples, 23).unwrap();
        let total: f64 = est.iter().map(|(e, &r)| (r - exact.resistance(e.u, e.v)).abs()).sum();
        total / est.len() as f64
    };
    let (coarse, fine) = (mean_err(40), mean_err(1280));
    assert!(fine < coarse, "32x the samples must shrink the error: {fine} !< {coarse}");
    assert!(fine < 0.02, "1280-sample mean error too large: {fine}");
    // Bitwise reproducibility under the same seed.
    let a = spanning_edge_centrality(&g, 64, 99).unwrap();
    let b = spanning_edge_centrality(&g, 64, 99).unwrap();
    assert_eq!(a.len(), b.len());
    for (e, r) in &a {
        assert_eq!(r.to_bits(), b[e].to_bits(), "seed 99 must be reproducible at {e:?}");
    }
}

#[test]
fn walk_estimator_converges_to_exact_and_is_seed_deterministic() {
    let g = barabasi_albert(40, 2, 13);
    let exact = ExactResistance::new(&g).unwrap();
    let (u, v) = (0usize, 39usize);
    let r = exact.resistance(u, v);
    let err_at = |samples: usize| -> f64 {
        let opts = WalkEstimatorOptions { samples, seed: 5, ..Default::default() };
        (commute_time_resistance(&g, u, v, opts).unwrap() - r).abs()
    };
    let (coarse, fine) = (err_at(50), err_at(3200));
    assert!(fine < coarse, "64x the samples must shrink the error: {fine} !< {coarse}");
    assert!(fine < 0.1 * r.max(0.5), "3200-sample error too large: {fine} (r = {r})");
    // Same seed, same bits; walks are replayable.
    let opts = WalkEstimatorOptions { samples: 200, seed: 7, ..Default::default() };
    let once = commute_time_resistance(&g, u, v, opts).unwrap();
    let twice = commute_time_resistance(&g, u, v, opts).unwrap();
    assert_eq!(once.to_bits(), twice.to_bits());
}

#[test]
fn estimator_error_paths_surface_typed_core_errors() {
    // Two components: both estimators must refuse rather than hang or
    // return garbage, and the error is the typed Disconnected variant.
    let split = reecc_graph::Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
    assert!(matches!(spanning_edge_centrality(&split, 8, 1), Err(CoreError::Disconnected)));
    assert!(matches!(
        commute_time_resistance(&split, 0, 5, WalkEstimatorOptions::default()),
        Err(CoreError::Disconnected)
    ));
    // Zero samples are a usage error on a perfectly good graph.
    let g = barabasi_albert(20, 2, 3);
    assert!(matches!(
        spanning_edge_centrality(&g, 0, 1),
        Err(CoreError::Numerical(ref m)) if m.contains("sample")
    ));
    let zero = WalkEstimatorOptions { samples: 0, ..Default::default() };
    assert!(matches!(
        commute_time_resistance(&g, 0, 5, zero),
        Err(CoreError::Numerical(ref m)) if m.contains("sample")
    ));
    // Out-of-range endpoints name the offending node.
    assert!(matches!(
        commute_time_resistance(&g, 0, 20, WalkEstimatorOptions::default()),
        Err(CoreError::NodeOutOfRange { node: 20, n: 20 })
    ));
}

#[test]
fn query_engine_what_ifs_respect_monotonicity() {
    let g = analog();
    let engine =
        QueryEngine::build(&g, &SketchParams { epsilon: 0.3, seed: 2, ..Default::default() })
            .unwrap();
    let s = g.nodes().min_by_key(|&v| g.degree(v)).unwrap();
    let base = engine.eccentricity_full_scan(s).value;
    for e in g.non_edges_at(s).into_iter().take(8) {
        let after = engine.eccentricity_after_edge(s, e).value;
        assert!(after <= base + 1e-9, "what-if increased c(s): {after} > {base}");
    }
}
