//! Property-based tests (proptest) over the whole stack: metric axioms of
//! the resistance distance, Rayleigh monotonicity, solver/dense agreement,
//! hull guarantees and generator invariants on randomized inputs.

use proptest::prelude::*;
use reecc_core::update::{pinv_add_edge, solve_edge_potentials, updated_resistances};
use reecc_core::{ExactResistance, ResistanceSketch, SketchParams};
use reecc_graph::generators::connected_erdos_renyi;
use reecc_graph::{Edge, Graph};
use reecc_hull::approxch::{approx_convex_hull, verify_coverage, ApproxChOptions};
use reecc_hull::PointSet;
use reecc_linalg::cg::{solve_laplacian_simple, CgOptions};
use reecc_linalg::{laplacian_dense, laplacian_pseudoinverse, LaplacianOp};

/// A random connected graph with 4..=24 nodes.
fn connected_graph() -> impl Strategy<Value = Graph> {
    (4usize..=24, 0.05f64..0.5, any::<u64>())
        .prop_map(|(n, p, seed)| connected_erdos_renyi(n, p, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Resistance distance is a metric: non-negative, zero iff equal,
    /// symmetric, triangle inequality.
    #[test]
    fn resistance_is_a_metric(g in connected_graph()) {
        let er = ExactResistance::new(&g).unwrap();
        let n = g.node_count();
        for u in 0..n {
            prop_assert!(er.resistance(u, u).abs() < 1e-9);
            for v in 0..n {
                let ruv = er.resistance(u, v);
                prop_assert!(ruv >= -1e-12);
                prop_assert!((ruv - er.resistance(v, u)).abs() < 1e-9);
                if u != v {
                    prop_assert!(ruv > 1e-9, "distinct nodes have positive resistance");
                }
            }
        }
        // Triangle inequality on a sample of triples.
        for a in 0..n.min(6) {
            for b in 0..n.min(6) {
                for c in 0..n.min(6) {
                    prop_assert!(
                        er.resistance(a, c)
                            <= er.resistance(a, b) + er.resistance(b, c) + 1e-9
                    );
                }
            }
        }
    }

    /// Resistance never exceeds hop distance (unit resistors in series
    /// upper-bound the parallel network), and r <= n - 1 always.
    #[test]
    fn resistance_bounded_by_hops(g in connected_graph()) {
        let er = ExactResistance::new(&g).unwrap();
        let n = g.node_count();
        for s in 0..n.min(5) {
            let hops = reecc_graph::traversal::bfs_distances(&g, s);
            for (v, &h) in hops.iter().enumerate() {
                prop_assert!(er.resistance(s, v) <= h as f64 + 1e-9);
            }
        }
    }

    /// Rayleigh monotonicity: adding any edge never increases any pairwise
    /// resistance, hence never increases any eccentricity.
    #[test]
    fn edge_addition_is_monotone(g in connected_graph()) {
        let non_edges = g.non_edges();
        prop_assume!(!non_edges.is_empty());
        let e = non_edges[0];
        let before = ExactResistance::new(&g).unwrap();
        let after = ExactResistance::new(&g.with_edge(e).unwrap()).unwrap();
        let n = g.node_count();
        for u in 0..n {
            for v in 0..n {
                prop_assert!(after.resistance(u, v) <= before.resistance(u, v) + 1e-9);
            }
            prop_assert!(after.eccentricity(u).0 <= before.eccentricity(u).0 + 1e-9);
        }
    }

    /// The CG solver agrees with the dense pseudoinverse on every graph.
    #[test]
    fn cg_agrees_with_dense_pseudoinverse(g in connected_graph()) {
        let n = g.node_count();
        let pinv = laplacian_pseudoinverse(&g).unwrap();
        let op = LaplacianOp::new(&g);
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        b[n - 1] = -1.0;
        let out = solve_laplacian_simple(&op, &b, CgOptions::default());
        prop_assert!(out.converged);
        let expected = pinv.matvec(&b);
        for (a, e) in out.solution.iter().zip(&expected) {
            prop_assert!((a - e).abs() < 1e-6, "{a} vs {e}");
        }
    }

    /// The Sherman–Morrison update agrees with a rebuilt pseudoinverse.
    #[test]
    fn rank_one_update_agrees_with_rebuild(g in connected_graph()) {
        let non_edges = g.non_edges();
        prop_assume!(!non_edges.is_empty());
        let e = non_edges[non_edges.len() / 2];
        let mut pinv = laplacian_pseudoinverse(&g).unwrap();
        pinv_add_edge(&mut pinv, e);
        let fresh = laplacian_pseudoinverse(&g.with_edge(e).unwrap()).unwrap();
        let n = g.node_count();
        for i in 0..n {
            for j in 0..n {
                prop_assert!((pinv[(i, j)] - fresh[(i, j)]).abs() < 1e-7);
            }
        }
    }

    /// Solver-based updated resistances match exact recomputation.
    #[test]
    fn solver_updated_resistances_match(g in connected_graph()) {
        let non_edges = g.non_edges();
        prop_assume!(!non_edges.is_empty());
        let e = non_edges[0];
        let s = 0usize;
        let exact = ExactResistance::new(&g).unwrap();
        let base = exact.resistances_from(s);
        let mut ws = reecc_linalg::cg::CgWorkspace::new(g.node_count());
        let (w, r_uv) = solve_edge_potentials(&g, e, CgOptions::default(), &mut ws);
        let updated = updated_resistances(&base, &w, r_uv, s);
        let after = ExactResistance::new(&g.with_edge(e).unwrap()).unwrap();
        for (j, &r_new) in updated.iter().enumerate() {
            prop_assert!((r_new - after.resistance(s, j)).abs() < 1e-5);
        }
    }

    /// Laplacian essentials: L * 1 = 0 and x' L x = sum of squared edge
    /// differences (energy form).
    #[test]
    fn laplacian_energy_form(g in connected_graph()) {
        let n = g.node_count();
        let l = laplacian_dense(&g);
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let lx = l.matvec(&x);
        let quad: f64 = x.iter().zip(&lx).map(|(a, b)| a * b).sum();
        let energy: f64 = g
            .edges()
            .iter()
            .map(|e| (x[e.u] - x[e.v]) * (x[e.u] - x[e.v]))
            .sum();
        prop_assert!((quad - energy).abs() < 1e-9);
    }

    /// Hull coverage: the (unbudgeted) approximate hull covers every point
    /// within theta * D, and the selected set is a subset of the input.
    #[test]
    fn hull_covers_random_point_clouds(
        pts in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..10.0, 3),
            4..40
        ),
        theta in 0.05f64..0.3
    ) {
        let ps = PointSet::from_points(&pts);
        let res = approx_convex_hull(&ps, theta, ApproxChOptions::default());
        prop_assert!(!res.truncated);
        prop_assert!(res.vertices.iter().all(|&v| v < ps.len()));
        let mut dedup = res.vertices.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), res.vertices.len(), "vertices are distinct");
        prop_assert!(verify_coverage(
            &ps,
            &res.vertices,
            theta * res.diameter_estimate + 1e-9
        ));
    }

    /// Sketch estimates respect epsilon on random connected graphs (with
    /// the paper's full dimension the JL guarantee has huge margin).
    #[test]
    fn sketch_within_epsilon_on_random_graphs(
        (n, p, seed) in (6usize..=16, 0.2f64..0.6, any::<u64>())
    ) {
        let g = connected_erdos_renyi(n, p, seed);
        let eps = 0.35;
        let sk = ResistanceSketch::build(
            &g,
            &SketchParams { epsilon: eps, seed: seed ^ 0xabcd, ..Default::default() },
        ).unwrap();
        let exact = ExactResistance::new(&g).unwrap();
        for u in 0..n {
            let (c_exact, _) = exact.eccentricity(u);
            let (c_sketch, _) = sk.eccentricity(u);
            prop_assert!(
                (c_sketch - c_exact).abs() <= eps * c_exact + 1e-9,
                "node {}: sketch {} vs exact {}", u, c_sketch, c_exact
            );
        }
    }

    /// Graph invariants under edge addition.
    #[test]
    fn with_edge_invariants(g in connected_graph()) {
        let non_edges = g.non_edges();
        prop_assume!(!non_edges.is_empty());
        let e = non_edges[0];
        let g2 = g.with_edge(e).unwrap();
        prop_assert_eq!(g2.node_count(), g.node_count());
        prop_assert_eq!(g2.edge_count(), g.edge_count() + 1);
        prop_assert!(g2.has_edge(e.u, e.v));
        prop_assert_eq!(g2.degree(e.u), g.degree(e.u) + 1);
        // Degree sum stays consistent.
        prop_assert_eq!(g2.degree_sum(), g.degree_sum() + 2);
    }

    /// Eccentricity of the farthest node: c(v) = r(v, f_v) and no node is
    /// farther.
    #[test]
    fn farthest_node_realizes_eccentricity(g in connected_graph()) {
        let er = ExactResistance::new(&g).unwrap();
        for v in 0..g.node_count() {
            let (c, f) = er.eccentricity(v);
            prop_assert!((er.resistance(v, f) - c).abs() < 1e-12);
            for u in 0..g.node_count() {
                prop_assert!(er.resistance(v, u) <= c + 1e-12);
            }
        }
    }
}

// Deterministic companion: Edge normalization invariants under proptest
// over raw pairs.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn edge_normalization(a in 0usize..100, b in 0usize..100) {
        prop_assume!(a != b);
        let e = Edge::new(a, b);
        prop_assert!(e.u < e.v);
        prop_assert_eq!(e.other(a), b);
        prop_assert_eq!(e.other(b), a);
    }

    #[test]
    fn graph_from_edges_idempotent(
        pairs in proptest::collection::vec((0usize..20, 0usize..20), 0..60)
    ) {
        let g1 = Graph::from_edges(20, pairs.clone()).unwrap();
        let g2 = Graph::from_edges(20, g1.edges().iter().map(|e| (e.u, e.v)).collect::<Vec<_>>()).unwrap();
        prop_assert_eq!(g1.edges(), g2.edges());
    }
}

// Mixed-precision + Chebyshev sketch properties, prefixed `mixed_cheby` so
// the CI precision-matrix job can select exactly this family with a test
// filter. Case counts are small: every case pays for several full sketch
// builds.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A mixed-precision + Chebyshev sketch is a drop-in for the f64
    /// build: every stored sketch entry is within ε/10 of the f64 value,
    /// and sampled eccentricities stay inside the sketch's ε guarantee
    /// against exact resistance.
    #[test]
    fn mixed_cheby_sketch_tracks_f64_build_within_eps_tenth(
        (n, p, seed) in (8usize..=20, 0.1f64..0.45, any::<u64>())
    ) {
        let g = connected_erdos_renyi(n, p, seed);
        let eps = 0.4;
        let f64_params = SketchParams {
            epsilon: eps,
            max_dimension: Some(16),
            seed: 7,
            ..Default::default()
        };
        let mut mixed_params = f64_params;
        mixed_params.precision = reecc_core::Precision::Mixed;
        mixed_params.cg.preconditioner = reecc_core::Preconditioner::Chebyshev(
            reecc_core::ChebyshevConfig::default(),
        );
        let reference = ResistanceSketch::build(&g, &f64_params).unwrap();
        let mixed = ResistanceSketch::build(&g, &mixed_params).unwrap();
        prop_assert_eq!(reference.flat().len(), mixed.flat().len());
        for (i, (a, b)) in mixed.flat().iter().zip(reference.flat()).enumerate() {
            prop_assert!(
                (a - b).abs() < eps / 10.0,
                "sketch entry {i} drifted: mixed {a} vs f64 {b}"
            );
        }
        // The user-visible consequence: eccentricities from the mixed
        // build are indistinguishable (to well under ε) from the f64
        // build's — the dimension cap may bend the JL guarantee on tiny
        // graphs, but both precisions bend it identically.
        for v in (0..n).step_by(3) {
            let (cm, _) = mixed.eccentricity(v);
            let (cf, _) = reference.eccentricity(v);
            prop_assert!(
                (cm - cf).abs() <= eps / 5.0 * cf.max(1.0),
                "c({v}): mixed {cm} vs f64 build {cf}"
            );
        }
    }

    /// Bitwise determinism across `threads` × `block_size`, in both
    /// precision modes: the knobs tune speed, never the answer.
    #[test]
    fn mixed_cheby_sketch_is_bitwise_deterministic_across_knobs(
        (n, p, seed) in (8usize..=16, 0.12f64..0.4, any::<u64>())
    ) {
        let g = connected_erdos_renyi(n, p, seed);
        for precision in [reecc_core::Precision::F64, reecc_core::Precision::Mixed] {
            let mut base = SketchParams {
                epsilon: 0.5,
                max_dimension: Some(12),
                seed: 11,
                precision,
                ..Default::default()
            };
            base.cg.preconditioner = reecc_core::Preconditioner::Chebyshev(
                reecc_core::ChebyshevConfig::default(),
            );
            let reference = ResistanceSketch::build(
                &g,
                &SketchParams { threads: 1, block_size: 1, ..base },
            )
            .unwrap();
            for (threads, block_size) in [(1usize, 0usize), (4, 3), (4, 8)] {
                let other = ResistanceSketch::build(
                    &g,
                    &SketchParams { threads, block_size, ..base },
                )
                .unwrap();
                prop_assert_eq!(
                    reference.flat(),
                    other.flat(),
                    "{:?} sketch differs at threads={} block_size={}",
                    precision, threads, block_size
                );
            }
        }
    }
}
