//! End-to-end tests for optimization-as-a-service: NDJSON job sessions
//! over the pipe transport, checkpointed resume after a mid-job
//! interruption (bitwise-identical plans across thread and block-size
//! settings), cooperative cancellation, and panic containment.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use reecc_core::{QueryEngine, SketchParams};
use reecc_graph::generators::barabasi_albert;
use reecc_graph::Graph;
use reecc_opt::{simple_greedy_with_diagnostics, Problem, SimpleOptions};
use reecc_serve::failpoint::{self, Action};
use reecc_serve::jobs::{JobRunner, JobSpec, JobsConfig, OptimizerKind};
use reecc_serve::json::Json;
use reecc_serve::{serve_pipe, LiveEngine, PoolConfig, ServePool};

const EPS: f64 = 0.4;
const WAIT: Duration = Duration::from_secs(120);

/// Failpoint sites are process-global; tests that arm them serialize.
static FP_LOCK: Mutex<()> = Mutex::new(());

fn graph() -> &'static Graph {
    static GRAPH: OnceLock<Graph> = OnceLock::new();
    GRAPH.get_or_init(|| barabasi_albert(80, 2, 77))
}

fn engine() -> Arc<QueryEngine> {
    static ENGINE: OnceLock<Arc<QueryEngine>> = OnceLock::new();
    Arc::clone(ENGINE.get_or_init(|| {
        Arc::new(
            QueryEngine::build(
                graph(),
                &SketchParams { epsilon: EPS, seed: 21, ..Default::default() },
            )
            .expect("BA graph is connected"),
        )
    }))
}

fn live() -> Arc<LiveEngine> {
    LiveEngine::ephemeral(engine(), None)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("reecc-jobs-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec(optimizer: OptimizerKind, threads: usize, block_size: usize) -> JobSpec {
    JobSpec {
        optimizer,
        source: 3,
        k: 3,
        eps: EPS,
        threads,
        block_size,
        lazy: matches!(optimizer, OptimizerKind::Simple),
        remd: true,
        seed: 13,
    }
}

fn runner(dir: Option<&PathBuf>) -> Arc<JobRunner> {
    JobRunner::start(
        live(),
        &JobsConfig { max_jobs: 1, queue_depth: 8, job_dir: dir.cloned() },
        Box::new(|| false),
    )
    .unwrap()
}

fn finished_plan(runner: &JobRunner, id: u64, want: &str) -> Vec<(usize, usize, f64)> {
    let report = runner.wait(id, WAIT).unwrap();
    assert_eq!(report.state, want, "job {id}: {:?}", report.detail);
    report.plan
}

#[test]
fn pipe_session_runs_a_job_to_a_plan_matching_the_direct_optimizer() {
    let pool = ServePool::with_live_and_jobs(
        live(),
        PoolConfig { threads: 2, queue_depth: 32, ..Default::default() },
        Some(JobsConfig { max_jobs: 1, queue_depth: 8, job_dir: None }),
    )
    .unwrap();
    let input = "{\"op\":\"optimize-submit\",\"optimizer\":\"simple\",\"s\":3,\"k\":3,\
                 \"eps\":0.4,\"threads\":1,\"lazy\":true,\"seed\":13,\"id\":1}\n\
                 {\"op\":\"optimize-events\",\"job\":0,\"follow\":true}\n\
                 {\"op\":\"optimize-result\",\"job\":0,\"wait\":true}\n\
                 {\"op\":\"stats\"}\n";
    let mut out = Vec::new();
    let stats = serve_pipe(&pool, input.as_bytes(), &mut out).unwrap();
    assert_eq!(stats.errors, 0, "{}", String::from_utf8_lossy(&out));
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
    // submit ack + 3 event lines + events closing status + result + stats.
    assert_eq!(lines.len(), 7, "{text}");
    assert_eq!(lines[0].get("state").and_then(Json::as_str), Some("queued"));
    for (i, line) in lines[1..4].iter().enumerate() {
        assert_eq!(line.get("event").and_then(Json::as_bool), Some(true), "{text}");
        assert_eq!(line.get("iteration").and_then(Json::as_usize), Some(i), "{text}");
    }
    assert_eq!(lines[4].get("state").and_then(Json::as_str), Some("completed"));

    // The served plan is bitwise the direct CLI-batch answer.
    let (direct_plan, _) = simple_greedy_with_diagnostics(
        graph(),
        Problem::Remd,
        3,
        3,
        SimpleOptions { threads: 1, lazy: true },
    )
    .unwrap();
    let Some(Json::Arr(plan)) = lines[5].get("plan").cloned() else {
        panic!("optimize-result must carry a plan: {text}");
    };
    assert_eq!(plan.len(), direct_plan.len());
    for (step, expect) in plan.iter().zip(&direct_plan) {
        let Json::Arr(triple) = step else { panic!("{step:?}") };
        assert_eq!(triple[0].as_usize(), Some(expect.u));
        assert_eq!(triple[1].as_usize(), Some(expect.v));
    }
    let jobs_completed = lines[6].get("jobs_completed").and_then(Json::as_f64);
    assert_eq!(jobs_completed, Some(1.0), "{text}");
}

#[test]
fn interrupted_jobs_resume_bitwise_across_thread_and_block_settings() {
    let _fp = FP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // (optimizer, threads, block_size): resumed plans must be bitwise
    // identical to uninterrupted ones whatever the parallel layout.
    let combos = [
        (OptimizerKind::Simple, 1, 0),
        (OptimizerKind::Simple, 2, 8),
        (OptimizerKind::MinRecc, 1, 0),
        (OptimizerKind::MinRecc, 2, 8),
    ];
    for (i, &(kind, threads, block)) in combos.iter().enumerate() {
        let spec = spec(kind, threads, block);
        // Reference: the same spec run start-to-finish, no interruption.
        let reference = {
            let r = runner(None);
            let id = r.submit(spec).unwrap();
            let plan = finished_plan(&r, id, "completed");
            r.shutdown();
            plan
        };
        assert_eq!(reference.len(), 3);

        // Interrupted run: slow iterations down, shut the runner down as
        // soon as the first checkpoint has landed (mid-job), leaving the
        // checkpoint file behind.
        let dir = temp_dir(&format!("resume-{i}"));
        {
            failpoint::configure("job.iterate", Action::Delay(60), None);
            let r = runner(Some(&dir));
            let id = r.submit(spec).unwrap();
            assert_eq!(id, 0);
            let deadline = Instant::now() + WAIT;
            while r.status(id).unwrap().iterations < 1 {
                assert!(Instant::now() < deadline, "first checkpoint never landed");
                std::thread::sleep(Duration::from_millis(5));
            }
            r.shutdown();
            failpoint::clear("job.iterate");
            let report = r.status(id).unwrap();
            assert!(
                report.state == "failed" && report.detail.contains("shutdown"),
                "interruption must be reported, checkpoint kept: {report:?}"
            );
        }
        let checkpoint = dir.join("job-0.reeccjob");
        assert!(checkpoint.exists(), "shutdown must keep the checkpoint");

        // A fresh process over the same job dir resumes and completes.
        let r = runner(Some(&dir));
        assert_eq!(r.resumed_on_start(), 1);
        let resumed = finished_plan(&r, 0, "completed");
        let report = r.status(0).unwrap();
        assert!(report.resumed >= 1, "{report:?}");
        r.shutdown();

        assert_eq!(resumed.len(), reference.len(), "combo {kind:?}/{threads}t/b{block}");
        for (a, b) in resumed.iter().zip(&reference) {
            assert_eq!((a.0, a.1), (b.0, b.1), "combo {kind:?}/{threads}t/b{block}");
            assert_eq!(
                a.2.to_bits(),
                b.2.to_bits(),
                "scores must be bitwise equal: combo {kind:?}/{threads}t/b{block}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn protocol_cancel_stops_a_running_job_cleanly() {
    let _fp = FP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::configure("job.iterate", Action::Delay(60), None);
    let pool = ServePool::with_live_and_jobs(
        live(),
        PoolConfig { threads: 1, queue_depth: 16, ..Default::default() },
        Some(JobsConfig { max_jobs: 1, queue_depth: 8, job_dir: None }),
    )
    .unwrap();
    let runner = pool.jobs().unwrap();
    let id = runner.submit(spec(OptimizerKind::Simple, 1, 0)).unwrap();
    // Cancel through the protocol once the job is actually running.
    let deadline = Instant::now() + WAIT;
    while runner.status(id).unwrap().state == "queued" {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(5));
    }
    let input = format!("{{\"op\":\"optimize-cancel\",\"job\":{id}}}\n");
    let mut out = Vec::new();
    serve_pipe(&pool, input.as_bytes(), &mut out).unwrap();
    failpoint::clear("job.iterate");
    let report = runner.wait(id, WAIT).unwrap();
    assert_eq!(report.state, "cancelled", "{report:?}");
    assert!(
        (report.iterations as usize) < 3,
        "cancel must stop before the budget is spent: {report:?}"
    );
    // The runner thread survives: the next job completes normally.
    let next = runner.submit(spec(OptimizerKind::Simple, 1, 0)).unwrap();
    let plan = finished_plan(runner, next, "completed");
    assert_eq!(plan.len(), 3);
}

#[test]
fn a_panicking_job_fails_alone_and_the_runner_keeps_serving() {
    let _fp = FP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let r = runner(None);
    failpoint::configure("job.iterate", Action::Panic, Some(1));
    let poisoned = r.submit(spec(OptimizerKind::Simple, 1, 0)).unwrap();
    let report = r.wait(poisoned, WAIT).unwrap();
    failpoint::clear("job.iterate");
    assert_eq!(report.state, "failed", "{report:?}");
    assert!(report.detail.contains("panic"), "{report:?}");
    let next = r.submit(spec(OptimizerKind::Simple, 1, 0)).unwrap();
    let plan = finished_plan(&r, next, "completed");
    assert_eq!(plan.len(), 3);
    r.shutdown();
}
