//! Chaos tests: deterministic fault injection against the serving stack.
//!
//! Each scenario arms a named failpoint (`reecc_serve::failpoint`), drives
//! the system through the fault, and asserts the *containment* contract —
//! a panic costs exactly one request, a write fault never leaves a partial
//! snapshot at the target path, and a drain under load accounts for every
//! submitted request.
//!
//! The failpoint registry is process-global and the test harness runs
//! tests concurrently, so every test that arms a shared site serializes
//! on [`chaos_lock`] (poison-tolerant: an assert failure in one test must
//! not cascade into "poisoned lock" noise in the others).

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use reecc_core::{exact_query, ExactResistance, QueryEngine, SketchParams};
use reecc_graph::generators::barabasi_albert;
use reecc_graph::Graph;
use reecc_serve::failpoint::{self, Action};
use reecc_serve::{
    LiveConfig, LiveEngine, LiveError, PoolConfig, Request, RequestEnvelope, ServePool,
    SketchSnapshot, SnapshotError, WalOp,
};

const N: usize = 120;
const EPS: f64 = 0.35;

fn graph() -> &'static Graph {
    static GRAPH: OnceLock<Graph> = OnceLock::new();
    GRAPH.get_or_init(|| barabasi_albert(N, 2, 777))
}

fn engine() -> Arc<QueryEngine> {
    static ENGINE: OnceLock<Arc<QueryEngine>> = OnceLock::new();
    Arc::clone(ENGINE.get_or_init(|| {
        Arc::new(
            QueryEngine::build(
                graph(),
                &SketchParams { epsilon: EPS, seed: 31, ..Default::default() },
            )
            .expect("BA graph is connected"),
        )
    }))
}

/// Serialize failpoint-arming tests; tolerate poisoning so one failing
/// test does not turn its siblings into lock panics.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("reecc-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn ecc_request(v: usize, id: u64) -> RequestEnvelope {
    RequestEnvelope { id: Some(id), deadline_ms: None, request: Request::Ecc { v } }
}

/// Scenario 1 (worker supervision): a panic injected into worker compute
/// must come back as a structured `internal` error on *that* request, the
/// worker must be respawned, and the next 100 requests must be answered
/// correctly — within the sketch's ε guarantee of exact resistance
/// eccentricity.
#[test]
fn injected_worker_panic_is_contained_and_the_pool_keeps_answering_correctly() {
    let _guard = chaos_lock();
    failpoint::clear("worker.compute");
    let pool = ServePool::new(
        engine(),
        PoolConfig { threads: 2, queue_depth: 64, ..Default::default() },
    );

    // Arm: exactly one hit panics, then the site disarms itself.
    failpoint::configure("worker.compute", Action::Panic, Some(1));
    let response = pool.run(ecc_request(3, 1));
    let rendered = response.render();
    assert!(!response.is_ok(), "the panicked request must fail: {rendered}");
    assert!(
        rendered.contains("\"error\":\"internal\"") && rendered.contains("panic"),
        "panic must surface as a structured internal error: {rendered}"
    );
    assert_eq!(failpoint::fired("worker.compute"), 1);
    assert_eq!(pool.panics_total(), 1, "the panic must be counted");

    // Follow-ups: 100 requests, all answered, all within ε of exact.
    let nodes: Vec<usize> = (0..100).map(|i| (i * 7) % N).collect();
    let exact = exact_query(graph(), &nodes).unwrap();
    for (i, (v, truth)) in exact.into_iter().enumerate() {
        let response = pool.run(ecc_request(v, 100 + i as u64));
        let rendered = response.render();
        assert!(response.is_ok(), "request {i} after the panic failed: {rendered}");
        let got = extract_value(&rendered);
        assert!(
            (got - truth).abs() <= EPS * truth + 1e-9,
            "c({v}) = {got} vs exact {truth} (request {i} after panic)"
        );
    }
    assert!(
        pool.workers_respawned() >= 1,
        "the supervisor must have respawned the panicked worker"
    );
    failpoint::clear("worker.compute");
}

/// Pull `"value":X` out of a rendered response line.
fn extract_value(rendered: &str) -> f64 {
    let start = rendered.find("\"value\":").expect("ok response carries a value") + 8;
    let rest = &rendered[start..];
    let end = rest.find([',', '}']).unwrap();
    rest[..end].parse().expect("numeric value")
}

/// Scenario 2 (atomic snapshots): an I/O fault injected into the commit
/// window of `save` — after the temp file is written, before the rename —
/// must never leave a partial or corrupt file at the target path. Either
/// the old content survives intact or the target does not exist; temp
/// files never accumulate.
#[test]
fn injected_write_fault_never_exposes_a_partial_snapshot() {
    let _guard = chaos_lock();
    failpoint::clear("snapshot.write");
    let snap = SketchSnapshot::from_engine(&engine());
    let path = temp_path("atomic-under-fault.sketch");
    let _ = std::fs::remove_file(&path);

    // Fault on a fresh target: save fails, nothing appears at the path.
    failpoint::configure("snapshot.write", Action::IoError, Some(1));
    let err = snap.save(&path).unwrap_err();
    assert!(matches!(err, SnapshotError::Io(_)), "injected fault is transient I/O: {err:?}");
    assert!(!path.exists(), "a failed first save must not create the target");

    // Establish good content, then fault an overwrite: the old bytes must
    // survive byte-for-byte.
    snap.save(&path).unwrap();
    let before = std::fs::read(&path).unwrap();
    failpoint::configure("snapshot.write", Action::IoError, Some(1));
    snap.save(&path).unwrap_err();
    let after = std::fs::read(&path).unwrap();
    assert_eq!(before, after, "a failed overwrite must leave the old snapshot untouched");
    // And what is on disk still loads cleanly.
    SketchSnapshot::load(&path).unwrap();

    // No temp droppings in the directory, across both failed saves.
    let dir = path.parent().unwrap();
    let stray: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp."))
        .collect();
    assert!(stray.is_empty(), "failed saves must clean their temp files: {stray:?}");
    failpoint::clear("snapshot.write");
}

/// Scenario 3 (graceful drain): drain a pool that still has queued work —
/// with a compute delay armed so the queue is genuinely backed up — and
/// check the books: the drain finishes within its deadline and every
/// submitted request is either answered or reported dropped.
#[test]
fn drain_under_load_meets_its_deadline_and_accounts_for_every_request() {
    let _guard = chaos_lock();
    failpoint::clear("worker.compute");
    let pool = ServePool::new(
        engine(),
        PoolConfig { threads: 2, queue_depth: 64, ..Default::default() },
    );

    // Slow every compute down so submissions outpace the workers.
    failpoint::configure("worker.compute", Action::Delay(30), None);
    let mut receivers = Vec::new();
    let mut submitted = 0u64;
    for i in 0..40usize {
        match pool.submit(ecc_request(i % N, i as u64)) {
            Ok(rx) => {
                submitted += 1;
                receivers.push(rx);
            }
            Err(e) => panic!("queue depth 64 must accept 40 requests: {e:?}"),
        }
    }

    // Drain with a deadline shorter than the remaining work (40 × 30 ms
    // across 2 workers ≈ 600 ms of queue) so some requests are dropped.
    let grace = Duration::from_millis(250);
    let started = Instant::now();
    let report = pool.drain(grace);
    let elapsed = started.elapsed();
    failpoint::clear("worker.compute");

    assert!(
        elapsed < grace + Duration::from_secs(5),
        "drain must not run far past its deadline: {elapsed:?}"
    );
    assert_eq!(report.submitted, submitted, "drain report counts what we submitted");
    assert_eq!(
        report.answered + report.dropped,
        report.submitted,
        "every request is either answered or reported dropped: {report:?}"
    );
    assert!(report.dropped > 0, "an over-deadline drain must drop something: {report:?}");

    // Every receiver got *some* response — dropped requests get a
    // structured `draining` error, not a hung channel.
    let mut draining_errors = 0u64;
    for rx in receivers {
        let response = rx.recv().expect("no request may be silently abandoned");
        if response.render().contains("\"error\":\"draining\"") {
            draining_errors += 1;
        }
    }
    assert_eq!(
        draining_errors, report.dropped,
        "dropped requests must be told they were dropped"
    );
}

/// Scenario 4 (durability chaos): a stream of random mutations against a
/// WAL-backed live engine, with an fsync fault injected mid-stream, then a
/// simulated crash (nothing flushed beyond the WAL's acks) and a restart
/// from the directory alone. The contract: the faulted mutation is a typed
/// error with no partial state, replay reproduces the pre-crash sketch
/// bitwise, and every pairwise resistance of the recovered engine matches
/// a from-scratch exact computation on the mutated graph within the sketch
/// guarantee plus the accumulated error-budget spend.
#[test]
fn random_mutations_survive_a_wal_fault_and_a_crash_restart() {
    let _guard = chaos_lock();
    failpoint::clear("wal.append");
    let dir = temp_path("live-chaos-wal");
    let _ = std::fs::remove_dir_all(&dir);
    // A huge budget keeps the background re-sketch out of this scenario;
    // scenario 5 covers the swap path.
    let config = LiveConfig { wal_dir: Some(dir.clone()), error_budget: Some(1e9) };
    let (live, recovered) = LiveEngine::open(engine(), &config).unwrap();
    assert!(!recovered, "fresh dir must bootstrap");

    // Deterministic LCG mutation stream, mirrored into a model edge set so
    // the final graph can be rebuilt from scratch for ground truth.
    let mut edges: std::collections::BTreeSet<(usize, usize)> =
        graph().edges().iter().map(|e| (e.u, e.v)).collect();
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 16
    };
    let mut accepted = 0u64;
    let mut spent = 0.0f64;
    let step = |live: &Arc<LiveEngine>,
                edges: &mut std::collections::BTreeSet<(usize, usize)>,
                next: &mut dyn FnMut() -> u64,
                want_remove: bool|
     -> Option<f64> {
        for _ in 0..1000 {
            let (op, u, v) = if want_remove {
                let idx = (next() % edges.len() as u64) as usize;
                let &(u, v) = edges.iter().nth(idx).unwrap();
                (WalOp::RemoveEdge, u, v)
            } else {
                let (u, v) = ((next() % N as u64) as usize, (next() % N as u64) as usize);
                if u == v || edges.contains(&(u.min(v), u.max(v))) {
                    continue;
                }
                (WalOp::AddEdge, u, v)
            };
            match live.apply_mutation(op, u, v) {
                Ok(receipt) => {
                    let key = (u.min(v), u.max(v));
                    if want_remove {
                        edges.remove(&key);
                    } else {
                        edges.insert(key);
                    }
                    return Some(receipt.cost);
                }
                // Disconnecting removals are typed rejections; pick again.
                Err(LiveError::Rejected(_)) if want_remove => continue,
                Err(e) => panic!("unexpected mutation failure ({op:?} {u} {v}): {e}"),
            }
        }
        None
    };
    for i in 0..24u64 {
        if i == 12 {
            // Mid-stream fsync fault on a guaranteed-accepted add: the ack
            // must be a typed WAL error, nothing published, nothing logged.
            let (fu, fv) = (0..N)
                .flat_map(|a| (a + 1..N).map(move |b| (a, b)))
                .find(|&(a, b)| !edges.contains(&(a, b)))
                .unwrap();
            let fp_before = live.view().fingerprint;
            failpoint::configure("wal.append", Action::IoError, Some(1));
            let err = live.apply_mutation(WalOp::AddEdge, fu, fv).unwrap_err();
            assert!(matches!(err, LiveError::Wal(_)), "fsync fault must be typed: {err}");
            assert_eq!(live.view().fingerprint, fp_before, "faulted mutation must not publish");
            assert_eq!(live.mutations_applied(), accepted, "faulted mutation must not count");
            // The rolled-back log accepts the very same mutation afterwards.
            let receipt = live.apply_mutation(WalOp::AddEdge, fu, fv).unwrap();
            edges.insert((fu, fv));
            accepted += 1;
            spent += receipt.cost;
        }
        let cost = step(&live, &mut edges, &mut next, i % 3 == 2)
            .expect("a sparse 120-node graph always has an applicable mutation");
        accepted += 1;
        spent += cost;
    }
    assert_eq!(live.mutations_applied(), accepted);
    let served = live.view();
    drop(live); // simulated kill -9: only the WAL acks survive

    let restarted = LiveEngine::recover(&dir, Some(1e9)).unwrap();
    assert_eq!(restarted.wal_replayed_on_start(), accepted);
    let view = restarted.view();
    assert_eq!(view.fingerprint, served.fingerprint, "replay must land on the same graph");

    // Ground truth: rebuild the mutated graph from the model edge set.
    let model = Graph::from_edges(N, edges.iter().copied()).unwrap();
    assert_eq!(reecc_graph::fingerprint(&model), view.fingerprint);
    let exact = ExactResistance::new(&model).unwrap();
    let tol = EPS + spent;
    for u in 0..N {
        for v in (u + 1)..N {
            let a = served.engine.resistance(u, v);
            let b = view.engine.resistance(u, v);
            assert_eq!(a.to_bits(), b.to_bits(), "r({u},{v}) replay drift: {a} vs {b}");
            let truth = exact.resistance(u, v);
            assert!(
                (b - truth).abs() <= tol * truth + 1e-9,
                "r({u},{v}): recovered {b} vs exact {truth} (tol {tol})"
            );
        }
    }
    failpoint::clear("wal.append");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Scenario 4b (replay + swap faults): the remaining two of the four new
/// failpoint sites. A fault during startup replay must be a typed
/// `Replay` error (and a clean retry must then recover the exact state);
/// a fault at `epoch.swap` — after the new epoch is durably written,
/// before the `CURRENT` flip — must abort the commit, leave the old
/// epoch current with no orphaned files, and keep the directory fully
/// recoverable. Never a panic, never silently-wrong answers.
#[test]
fn replay_and_swap_faults_are_typed_and_leave_a_recoverable_directory() {
    let _guard = chaos_lock();
    failpoint::clear("wal.replay");
    failpoint::clear("epoch.swap");
    let dir = temp_path("live-chaos-fp");
    let _ = std::fs::remove_dir_all(&dir);
    let mut absent = (0..N)
        .flat_map(|a| (a + 1..N).map(move |b| (a, b)))
        .filter(|&(a, b)| !graph().has_edge(a, b));
    let (u1, v1) = absent.next().unwrap();
    let (u2, v2) = absent.next().unwrap();

    let config = LiveConfig { wal_dir: Some(dir.clone()), error_budget: Some(1e9) };
    let (live, _) = LiveEngine::open(engine(), &config).unwrap();
    live.apply_mutation(WalOp::AddEdge, u1, v1).unwrap();
    live.apply_mutation(WalOp::AddEdge, u2, v2).unwrap();
    let served = live.view();
    drop(live); // crash with two acked records in the WAL

    // Armed replay fault: startup must fail with a typed WAL error — not
    // panic, and not serve a half-replayed engine.
    failpoint::configure("wal.replay", Action::IoError, Some(1));
    match LiveEngine::recover(&dir, Some(1e9)) {
        Err(LiveError::Wal(_)) => {}
        Err(other) => panic!("armed wal.replay must be a typed WAL error: {other}"),
        Ok(_) => panic!("armed wal.replay must fail recovery"),
    }
    // Disarmed retry: the exact pre-crash state comes back bitwise.
    let recovered = LiveEngine::recover(&dir, Some(1e9)).unwrap();
    assert_eq!(recovered.wal_replayed_on_start(), 2);
    assert_eq!(recovered.view().fingerprint, served.fingerprint);
    let (a, b) = (served.engine.resistance(u1, v2), recovered.view().engine.resistance(u1, v2));
    assert_eq!(a.to_bits(), b.to_bits(), "replay drift: {a} vs {b}");

    // Armed swap fault: drain the budget so a re-sketch runs, and fail the
    // commit between "new epoch durable" and "CURRENT flips". The old
    // epoch must stay current and the aborted epoch's files must be gone.
    failpoint::configure("epoch.swap", Action::IoError, Some(1));
    let receipt = {
        // Re-open as a live engine with a tiny budget: the recovery above
        // already spent nothing, so drop it and recover with the budget
        // that makes the next mutation kick the re-sketch.
        drop(recovered);
        let live = LiveEngine::recover(&dir, Some(1e-9)).unwrap();
        let receipt = live.apply_mutation(WalOp::RemoveEdge, u2, v2).unwrap();
        live.join_resketch();
        assert_eq!(live.epoch(), 0, "faulted swap must not advance the epoch");
        assert_eq!(live.resketches_total(), 0);
        assert_eq!(live.mutations_in_epoch(), 3, "delta survives the aborted commit");
        drop(live);
        receipt
    };
    assert!(receipt.resketch_kicked, "{receipt:?}");
    assert_eq!(failpoint::fired("epoch.swap"), 1);
    assert_eq!(reecc_serve::wal::read_current(&dir).unwrap(), Some(0), "CURRENT never flipped");
    assert!(!reecc_serve::wal::graph_path(&dir, 1).exists(), "aborted epoch files cleaned");
    assert!(!reecc_serve::wal::sketch_path(&dir, 1).exists());
    assert!(!reecc_serve::wal::wal_path(&dir, 1).exists());

    // And the directory still recovers: epoch 0 plus all three records.
    let after = LiveEngine::recover(&dir, Some(1e9)).unwrap();
    assert_eq!(after.wal_replayed_on_start(), 3);
    assert!(!after.view().engine.graph().has_edge(u2, v2), "removal survived the crash");
    failpoint::clear("wal.replay");
    failpoint::clear("epoch.swap");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Scenario 5 (non-blocking epoch swap): drain the budget so a background
/// re-sketch kicks off, hold that build open with a delay failpoint, and
/// show that readers keep getting answers on the old epoch the whole time.
/// Once the build is released, the swap lands: epoch 1, "fast" tier again.
#[test]
fn epoch_swap_never_blocks_readers() {
    let _guard = chaos_lock();
    failpoint::clear("resketch.build");
    // Hold the background build open for longer than the reader phase.
    failpoint::configure("resketch.build", Action::Delay(1500), None);
    // A tiny budget: the very first mutation drains it and kicks the build.
    let pool = ServePool::with_live(
        LiveEngine::ephemeral(engine(), Some(1e-9)),
        PoolConfig { threads: 2, queue_depth: 64, ..Default::default() },
    );
    let live = Arc::clone(pool.live());
    let (u, v) = (0..N)
        .flat_map(|a| (a + 1..N).map(move |b| (a, b)))
        .find(|&(a, b)| !graph().has_edge(a, b))
        .unwrap();
    let receipt = live.apply_mutation(WalOp::AddEdge, u, v).unwrap();
    assert!(receipt.resketch_kicked, "{receipt:?}");
    assert!(live.resketch_running(), "the re-sketch must be in flight");
    assert_eq!(live.epoch(), 0);

    // Readers during the build: all answered, promptly, on the old epoch.
    let started = Instant::now();
    for i in 0..8u64 {
        let response = pool.run(ecc_request((i as usize * 7) % N, i));
        assert!(response.is_ok(), "reader blocked or failed: {}", response.render());
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(1000),
        "readers must not wait for the re-sketch: {elapsed:?}"
    );
    assert_eq!(live.epoch(), 0, "the swap must not have landed mid-build");
    assert_eq!(pool.tier_name(), "approx", "mutated pre-swap view cannot trust its hull");

    failpoint::clear("resketch.build");
    live.join_resketch();
    assert_eq!(live.epoch(), 1, "released build must swap in the fresh epoch");
    assert_eq!(live.resketches_total(), 1);
    assert_eq!(pool.tier_name(), "fast", "fresh epoch restores the fast tier");
    assert!(pool.live().view().engine.graph().has_edge(u, v), "mutation survives the swap");
}

/// The env-var grammar that the CLI smoke test uses must parse: one armed
/// site with a count, one delay site, separated by semicolons.
#[test]
fn failpoint_env_grammar_round_trips() {
    let parsed =
        failpoint::parse_spec("worker.compute=panic*1;snapshot.load=delay(5)").unwrap();
    assert_eq!(parsed.len(), 2);
    assert!(failpoint::parse_spec("nonsense without an equals").is_err());
    assert!(failpoint::parse_spec("site=unknown-action").is_err());
}
