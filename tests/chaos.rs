//! Chaos tests: deterministic fault injection against the serving stack.
//!
//! Each scenario arms a named failpoint (`reecc_serve::failpoint`), drives
//! the system through the fault, and asserts the *containment* contract —
//! a panic costs exactly one request, a write fault never leaves a partial
//! snapshot at the target path, and a drain under load accounts for every
//! submitted request.
//!
//! The failpoint registry is process-global and the test harness runs
//! tests concurrently, so every test that arms a shared site serializes
//! on [`chaos_lock`] (poison-tolerant: an assert failure in one test must
//! not cascade into "poisoned lock" noise in the others).

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use reecc_core::{exact_query, QueryEngine, SketchParams};
use reecc_graph::generators::barabasi_albert;
use reecc_graph::Graph;
use reecc_serve::failpoint::{self, Action};
use reecc_serve::{
    PoolConfig, Request, RequestEnvelope, ServePool, SketchSnapshot, SnapshotError,
};

const N: usize = 120;
const EPS: f64 = 0.35;

fn graph() -> &'static Graph {
    static GRAPH: OnceLock<Graph> = OnceLock::new();
    GRAPH.get_or_init(|| barabasi_albert(N, 2, 777))
}

fn engine() -> Arc<QueryEngine> {
    static ENGINE: OnceLock<Arc<QueryEngine>> = OnceLock::new();
    Arc::clone(ENGINE.get_or_init(|| {
        Arc::new(
            QueryEngine::build(
                graph(),
                &SketchParams { epsilon: EPS, seed: 31, ..Default::default() },
            )
            .expect("BA graph is connected"),
        )
    }))
}

/// Serialize failpoint-arming tests; tolerate poisoning so one failing
/// test does not turn its siblings into lock panics.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("reecc-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn ecc_request(v: usize, id: u64) -> RequestEnvelope {
    RequestEnvelope { id: Some(id), deadline_ms: None, request: Request::Ecc { v } }
}

/// Scenario 1 (worker supervision): a panic injected into worker compute
/// must come back as a structured `internal` error on *that* request, the
/// worker must be respawned, and the next 100 requests must be answered
/// correctly — within the sketch's ε guarantee of exact resistance
/// eccentricity.
#[test]
fn injected_worker_panic_is_contained_and_the_pool_keeps_answering_correctly() {
    let _guard = chaos_lock();
    failpoint::clear("worker.compute");
    let pool = ServePool::new(
        engine(),
        PoolConfig { threads: 2, queue_depth: 64, ..Default::default() },
    );

    // Arm: exactly one hit panics, then the site disarms itself.
    failpoint::configure("worker.compute", Action::Panic, Some(1));
    let response = pool.run(ecc_request(3, 1));
    let rendered = response.render();
    assert!(!response.is_ok(), "the panicked request must fail: {rendered}");
    assert!(
        rendered.contains("\"error\":\"internal\"") && rendered.contains("panic"),
        "panic must surface as a structured internal error: {rendered}"
    );
    assert_eq!(failpoint::fired("worker.compute"), 1);
    assert_eq!(pool.panics_total(), 1, "the panic must be counted");

    // Follow-ups: 100 requests, all answered, all within ε of exact.
    let nodes: Vec<usize> = (0..100).map(|i| (i * 7) % N).collect();
    let exact = exact_query(graph(), &nodes).unwrap();
    for (i, (v, truth)) in exact.into_iter().enumerate() {
        let response = pool.run(ecc_request(v, 100 + i as u64));
        let rendered = response.render();
        assert!(response.is_ok(), "request {i} after the panic failed: {rendered}");
        let got = extract_value(&rendered);
        assert!(
            (got - truth).abs() <= EPS * truth + 1e-9,
            "c({v}) = {got} vs exact {truth} (request {i} after panic)"
        );
    }
    assert!(
        pool.workers_respawned() >= 1,
        "the supervisor must have respawned the panicked worker"
    );
    failpoint::clear("worker.compute");
}

/// Pull `"value":X` out of a rendered response line.
fn extract_value(rendered: &str) -> f64 {
    let start = rendered.find("\"value\":").expect("ok response carries a value") + 8;
    let rest = &rendered[start..];
    let end = rest.find([',', '}']).unwrap();
    rest[..end].parse().expect("numeric value")
}

/// Scenario 2 (atomic snapshots): an I/O fault injected into the commit
/// window of `save` — after the temp file is written, before the rename —
/// must never leave a partial or corrupt file at the target path. Either
/// the old content survives intact or the target does not exist; temp
/// files never accumulate.
#[test]
fn injected_write_fault_never_exposes_a_partial_snapshot() {
    let _guard = chaos_lock();
    failpoint::clear("snapshot.write");
    let snap = SketchSnapshot::from_engine(&engine());
    let path = temp_path("atomic-under-fault.sketch");
    let _ = std::fs::remove_file(&path);

    // Fault on a fresh target: save fails, nothing appears at the path.
    failpoint::configure("snapshot.write", Action::IoError, Some(1));
    let err = snap.save(&path).unwrap_err();
    assert!(matches!(err, SnapshotError::Io(_)), "injected fault is transient I/O: {err:?}");
    assert!(!path.exists(), "a failed first save must not create the target");

    // Establish good content, then fault an overwrite: the old bytes must
    // survive byte-for-byte.
    snap.save(&path).unwrap();
    let before = std::fs::read(&path).unwrap();
    failpoint::configure("snapshot.write", Action::IoError, Some(1));
    snap.save(&path).unwrap_err();
    let after = std::fs::read(&path).unwrap();
    assert_eq!(before, after, "a failed overwrite must leave the old snapshot untouched");
    // And what is on disk still loads cleanly.
    SketchSnapshot::load(&path).unwrap();

    // No temp droppings in the directory, across both failed saves.
    let dir = path.parent().unwrap();
    let stray: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp."))
        .collect();
    assert!(stray.is_empty(), "failed saves must clean their temp files: {stray:?}");
    failpoint::clear("snapshot.write");
}

/// Scenario 3 (graceful drain): drain a pool that still has queued work —
/// with a compute delay armed so the queue is genuinely backed up — and
/// check the books: the drain finishes within its deadline and every
/// submitted request is either answered or reported dropped.
#[test]
fn drain_under_load_meets_its_deadline_and_accounts_for_every_request() {
    let _guard = chaos_lock();
    failpoint::clear("worker.compute");
    let pool = ServePool::new(
        engine(),
        PoolConfig { threads: 2, queue_depth: 64, ..Default::default() },
    );

    // Slow every compute down so submissions outpace the workers.
    failpoint::configure("worker.compute", Action::Delay(30), None);
    let mut receivers = Vec::new();
    let mut submitted = 0u64;
    for i in 0..40usize {
        match pool.submit(ecc_request(i % N, i as u64)) {
            Ok(rx) => {
                submitted += 1;
                receivers.push(rx);
            }
            Err(e) => panic!("queue depth 64 must accept 40 requests: {e:?}"),
        }
    }

    // Drain with a deadline shorter than the remaining work (40 × 30 ms
    // across 2 workers ≈ 600 ms of queue) so some requests are dropped.
    let grace = Duration::from_millis(250);
    let started = Instant::now();
    let report = pool.drain(grace);
    let elapsed = started.elapsed();
    failpoint::clear("worker.compute");

    assert!(
        elapsed < grace + Duration::from_secs(5),
        "drain must not run far past its deadline: {elapsed:?}"
    );
    assert_eq!(report.submitted, submitted, "drain report counts what we submitted");
    assert_eq!(
        report.answered + report.dropped,
        report.submitted,
        "every request is either answered or reported dropped: {report:?}"
    );
    assert!(report.dropped > 0, "an over-deadline drain must drop something: {report:?}");

    // Every receiver got *some* response — dropped requests get a
    // structured `draining` error, not a hung channel.
    let mut draining_errors = 0u64;
    for rx in receivers {
        let response = rx.recv().expect("no request may be silently abandoned");
        if response.render().contains("\"error\":\"draining\"") {
            draining_errors += 1;
        }
    }
    assert_eq!(
        draining_errors, report.dropped,
        "dropped requests must be told they were dropped"
    );
}

/// The env-var grammar that the CLI smoke test uses must parse: one armed
/// site with a count, one delay site, separated by semicolons.
#[test]
fn failpoint_env_grammar_round_trips() {
    let parsed =
        failpoint::parse_spec("worker.compute=panic*1;snapshot.load=delay(5)").unwrap();
    assert_eq!(parsed.len(), 2);
    assert!(failpoint::parse_spec("nonsense without an equals").is_err());
    assert!(failpoint::parse_spec("site=unknown-action").is_err());
}
