//! Integration: the optimization suite end to end — heuristics vs OPT vs
//! baselines, plus the paper's §VI structural results.

use reecc_core::SketchParams;
use reecc_datasets::{Dataset, Tier};
use reecc_graph::generators::{barabasi_albert, line};
use reecc_opt::supermodularity::{check_monotone_chain, find_violation, objective};
use reecc_opt::{
    cen_min_recc, ch_min_recc, de_rem, de_remd, exact_trajectory, far_min_recc, min_recc,
    opt_exhaustive, path_remd, pk_remd, simple_greedy, OptimizeParams, Problem,
};

fn params() -> OptimizeParams {
    OptimizeParams {
        sketch: SketchParams { epsilon: 0.3, seed: 5, ..Default::default() },
        ..Default::default()
    }
}

/// The paper's Figure 8 protocol: on tiny networks the heuristics must be
/// near-optimal.
#[test]
fn heuristics_near_optimal_on_tiny_social_analogs() {
    for dataset in Dataset::tiny_social() {
        let g = dataset.synthesize(Tier::Ci);
        let s = g.nodes().min_by_key(|&v| g.degree(v)).expect("non-empty");
        let k = 2.min(g.non_edges_at(s).len());
        if k == 0 {
            continue;
        }
        let (_, opt_remd) = opt_exhaustive(&g, Problem::Remd, k, s).expect("runs");
        let (_, opt_rem) = opt_exhaustive(&g, Problem::Rem, k, s).expect("runs");
        let evaluate = |plan: &[reecc_graph::Edge]| {
            *exact_trajectory(&g, s, plan).expect("evaluates").last().expect("non-empty")
        };
        let far = evaluate(&far_min_recc(&g, k, s, &params()).expect("runs"));
        let cen = evaluate(&cen_min_recc(&g, k, s, &params()).expect("runs"));
        let ch = evaluate(&ch_min_recc(&g, k, s, &params()).expect("runs"));
        let mr = evaluate(&min_recc(&g, k, s, &params()).expect("runs"));
        // Near-optimality: within 15% of OPT on these tiny graphs.
        for (name, value, opt) in [
            ("FAR", far, opt_remd),
            ("CEN", cen, opt_remd),
            ("CH", ch, opt_rem),
            ("MIN", mr, opt_rem),
        ] {
            assert!(
                value <= opt * 1.15 + 1e-9,
                "{} on {}: {value} vs OPT {opt}",
                name,
                dataset.name()
            );
            assert!(value >= opt - 1e-9, "heuristic cannot beat OPT");
        }
    }
}

#[test]
fn heuristics_beat_baselines_on_scale_free_graph() {
    let g = barabasi_albert(120, 2, 31);
    let s = g.nodes().min_by_key(|&v| g.degree(v)).expect("non-empty");
    let k = 8;
    let evaluate = |plan: &[reecc_graph::Edge]| {
        *exact_trajectory(&g, s, plan).expect("evaluates").last().expect("non-empty")
    };
    let far = evaluate(&far_min_recc(&g, k, s, &params()).expect("runs"));
    let mr = evaluate(&min_recc(&g, k, s, &params()).expect("runs"));
    let de = evaluate(&de_remd(&g, k, s).expect("runs"));
    let de2 = evaluate(&de_rem(&g, k, s).expect("runs"));
    let pk = evaluate(&pk_remd(&g, k, s).expect("runs"));
    let path = evaluate(&path_remd(&g, k, s).expect("runs"));
    let worst_baseline = de.min(de2).min(pk).min(path);
    assert!(
        far < worst_baseline && mr < worst_baseline,
        "FAR {far} / MIN {mr} must beat best baseline {worst_baseline}"
    );
}

#[test]
fn simple_greedy_tracks_opt_within_tolerance() {
    let g = line(9);
    for s in [0usize, 4] {
        for k in 1..=2 {
            let (_, opt) = opt_exhaustive(&g, Problem::Rem, k, s).expect("runs");
            let plan = simple_greedy(&g, Problem::Rem, k, s).expect("runs");
            let greedy = *exact_trajectory(&g, s, &plan).expect("evaluates").last().unwrap();
            assert!(greedy <= opt * 1.25 + 1e-9, "s={s} k={k}: greedy {greedy} vs opt {opt}");
        }
    }
}

/// Rayleigh monotonicity end to end: every optimizer's trajectory is
/// non-increasing, and so is any random chain.
#[test]
fn all_trajectories_monotone() {
    let g = barabasi_albert(60, 2, 41);
    let s = 3;
    let k = 5;
    let plans = vec![
        far_min_recc(&g, k, s, &params()).expect("runs"),
        cen_min_recc(&g, k, s, &params()).expect("runs"),
        ch_min_recc(&g, k, s, &params()).expect("runs"),
        min_recc(&g, k, s, &params()).expect("runs"),
        simple_greedy(&g, Problem::Remd, k, s).expect("runs"),
        de_remd(&g, k, s).expect("runs"),
    ];
    for plan in plans {
        let traj = exact_trajectory(&g, s, &plan).expect("evaluates");
        for w in traj.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "monotonicity violated: {traj:?}");
        }
    }
}

#[test]
fn monotone_chain_checker_agrees_with_direct_evaluation() {
    let g = line(8);
    let chain = [reecc_graph::Edge::new(0, 7), reecc_graph::Edge::new(2, 5)];
    assert_eq!(check_monotone_chain(&g, 1, &chain, 1e-9).expect("evaluates"), None);
}

/// §VI-B: the objective is *not* supermodular — a violation exists on a
/// small line graph, which is exactly why the paper develops heuristics
/// instead of relying on the greedy (1 - 1/e) guarantee.
#[test]
fn non_supermodularity_is_reproducible() {
    let g = line(6);
    let pool = g.non_edges();
    let violation = find_violation(&g, 0, &pool, 1e-9).expect("evaluates");
    assert!(violation.is_some());
    let v = violation.unwrap();
    assert!(v.gain_at_large > v.gain_at_small);
}

/// The paper's Figure 3 headline: REM's optimum strictly beats REMD's.
#[test]
fn rem_strictly_better_than_remd_on_figure3() {
    let g = line(6);
    let s = 2;
    let (_, remd) = opt_exhaustive(&g, Problem::Remd, 1, s).expect("runs");
    let (_, rem) = opt_exhaustive(&g, Problem::Rem, 1, s).expect("runs");
    assert!((remd - 2.0).abs() < 1e-9);
    assert!((rem - 1.5).abs() < 1e-9);
    assert!(rem < remd);
}

#[test]
fn objective_evaluation_matches_trajectory_machinery() {
    let g = barabasi_albert(40, 2, 51);
    let plan = de_remd(&g, 3, 0).expect("runs");
    let via_objective = objective(&g, 0, &plan).expect("evaluates");
    let via_trajectory =
        *exact_trajectory(&g, 0, &plan).expect("evaluates").last().expect("non-empty");
    assert!((via_objective - via_trajectory).abs() < 1e-9);
}

#[test]
fn optimizers_work_on_dataset_analogs_end_to_end() {
    let g = reecc_datasets::preprocess(&Dataset::EmailUn.synthesize(Tier::Ci));
    let s = g.nodes().min_by_key(|&v| g.degree(v)).expect("non-empty");
    let k = 3;
    let plan = min_recc(&g, k, s, &params()).expect("runs");
    assert_eq!(plan.len(), k);
    let traj = exact_trajectory(&g, s, &plan).expect("evaluates");
    assert!(
        traj[k] < traj[0],
        "adding {k} optimized edges must strictly reduce c(s): {traj:?}"
    );
}
