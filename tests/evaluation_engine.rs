//! Property-based tests for the blocked + parallel candidate-evaluation
//! engine: on random connected graphs, every optimizer must produce a
//! plan **bitwise identical** to the serial scalar path for every
//! `threads × block_size` combination, including when CG is starved so
//! that columns fail and the recovery ladder has to rescue them.

use proptest::prelude::*;
use reecc_core::{ExactResistance, SketchParams};
use reecc_graph::generators::connected_erdos_renyi;
use reecc_graph::Graph;
use reecc_linalg::cg::CgOptions;
use reecc_opt::{
    cen_min_recc_with_diagnostics, ch_min_recc_with_diagnostics, far_min_recc_with_diagnostics,
    min_recc_with_diagnostics, simple_greedy_with_diagnostics, CandidateEvaluator,
    OptimizeParams, Problem, SimpleOptions,
};

/// A random connected graph with 6..=20 nodes.
fn connected_graph() -> impl Strategy<Value = Graph> {
    (6usize..=20, 0.05f64..0.5, any::<u64>())
        .prop_map(|(n, p, seed)| connected_erdos_renyi(n, p, seed))
}

/// The ISSUE's combination grid. `(1, 1)` — one worker, scalar-width
/// blocks — is the serial scalar reference everything else must match.
const COMBOS: &[(usize, usize)] =
    &[(1, 0), (1, 3), (1, 8), (2, 0), (2, 1), (2, 3), (2, 8), (4, 0), (4, 1), (4, 3), (4, 8)];

fn params(threads: usize, block_size: usize) -> OptimizeParams {
    OptimizeParams {
        sketch: SketchParams {
            epsilon: 0.4,
            seed: 7,
            threads,
            block_size,
            ..Default::default()
        },
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All four sketch-based heuristics (FARMINRECC, CENMINRECC,
    /// CHMINRECC, MINRECC) return the identical edge sequence under every
    /// threads × block_size combination.
    #[test]
    fn heuristic_plans_identical_across_all_combos(g in connected_graph()) {
        let s = (0..g.node_count()).min_by_key(|&v| g.degree(v)).unwrap();
        let k = 2usize;
        prop_assume!(g.non_edges_at(s).len() >= k);
        prop_assume!(g.non_edges().len() >= k);
        let reference = params(1, 1);
        let far_ref = far_min_recc_with_diagnostics(&g, k, s, &reference).unwrap();
        let cen_ref = cen_min_recc_with_diagnostics(&g, k, s, &reference).unwrap();
        let ch_ref = ch_min_recc_with_diagnostics(&g, k, s, &reference).unwrap();
        let mr_ref = min_recc_with_diagnostics(&g, k, s, &reference).unwrap();
        for &(threads, block) in COMBOS {
            let p = params(threads, block);
            let far = far_min_recc_with_diagnostics(&g, k, s, &p).unwrap();
            let cen = cen_min_recc_with_diagnostics(&g, k, s, &p).unwrap();
            let ch = ch_min_recc_with_diagnostics(&g, k, s, &p).unwrap();
            let mr = min_recc_with_diagnostics(&g, k, s, &p).unwrap();
            prop_assert_eq!(&far.0, &far_ref.0, "FAR t={} b={}", threads, block);
            prop_assert_eq!(&cen.0, &cen_ref.0, "CEN t={} b={}", threads, block);
            prop_assert_eq!(&ch.0, &ch_ref.0, "CH t={} b={}", threads, block);
            prop_assert_eq!(&mr.0, &mr_ref.0, "MIN t={} b={}", threads, block);
            // Work telemetry that doesn't depend on partitioning must
            // agree too: same candidates evaluated, same skips.
            prop_assert_eq!(far.1.full_evals, far_ref.1.full_evals);
            prop_assert_eq!(mr.1.full_evals, mr_ref.1.full_evals);
            prop_assert_eq!(mr.1.skipped_candidates, mr_ref.1.skipped_candidates);
        }
    }

    /// SIMPLE (exact greedy) is thread-count invariant in both eager and
    /// lazy modes (lazy compared against lazy: tie-breaking may
    /// legitimately differ between the two modes).
    #[test]
    fn simple_greedy_plans_identical_across_thread_counts(g in connected_graph()) {
        let s = 0usize;
        let k = 2usize;
        prop_assume!(g.non_edges().len() >= k);
        for lazy in [false, true] {
            let opts = |threads| SimpleOptions { threads, lazy };
            let reference =
                simple_greedy_with_diagnostics(&g, Problem::Rem, k, s, opts(1)).unwrap();
            for threads in [2usize, 4] {
                let got =
                    simple_greedy_with_diagnostics(&g, Problem::Rem, k, s, opts(threads))
                        .unwrap();
                prop_assert_eq!(&got.0, &reference.0, "lazy={} t={}", lazy, threads);
                prop_assert_eq!(got.1.full_evals, reference.1.full_evals);
                prop_assert_eq!(got.1.lazy_hits, reference.1.lazy_hits);
            }
        }
    }

    /// Starved CG (iteration cap far below what convergence needs) makes
    /// block columns fail; the engine must push each failed column through
    /// the recovery ladder and still produce scores bitwise identical to
    /// the serial scalar path — same values, same escalation flags, same
    /// rescue count — under every combination.
    #[test]
    fn starved_columns_are_rescued_identically_across_combos(g in connected_graph()) {
        let n = g.node_count();
        let s = 0usize;
        let candidates = g.non_edges();
        prop_assume!(!candidates.is_empty());
        let er = ExactResistance::new(&g).unwrap();
        let base: Vec<f64> = (0..n).map(|v| er.resistance(s, v)).collect();
        let starved = CgOptions { max_iterations: Some(2), ..Default::default() };
        let reference = CandidateEvaluator {
            threads: 1,
            block_size: 1,
            cg: starved,
            ..Default::default()
        };
        let (ref_scores, ref_stats) = reference.evaluate_edges(&g, &base, s, &candidates);
        // Two iterations cannot converge to 1e-8 on these graphs: the
        // starvation must actually trigger the ladder or this test would
        // silently degenerate into the healthy-path test above.
        prop_assume!(ref_stats.recovered_columns > 0);
        for &(threads, block) in COMBOS {
            let eval = CandidateEvaluator { threads, block_size: block, ..reference };
            let (scores, stats) = eval.evaluate_edges(&g, &base, s, &candidates);
            prop_assert_eq!(&scores, &ref_scores, "t={} b={}", threads, block);
            prop_assert_eq!(stats.recovered_columns, ref_stats.recovered_columns);
        }
        prop_assert!(ref_scores.iter().any(|sc| sc.escalated));
    }
}
