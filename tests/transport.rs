//! Transport-level tests for the poll(2) reactor behind `TcpServer`:
//! NDJSON framing across adversarial write patterns, write-buffer
//! admission, transport failpoints, and a 1k-connection storm.
//!
//! The contract under test is narrow and absolute: every connection is
//! *answered or shed with a typed line* — never hung, never given a
//! wrong answer — and reactor memory stays bounded by
//! `connections × write_buffer_cap` no matter what clients do.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use reecc_core::{QueryEngine, SketchParams};
use reecc_graph::generators::barabasi_albert;
use reecc_graph::Graph;
use reecc_serve::failpoint::{self, Action};
use reecc_serve::json::Json;
use reecc_serve::{PoolConfig, ServePool, ServerConfig, TcpServer};

const N: usize = 120;

fn graph() -> &'static Graph {
    static GRAPH: OnceLock<Graph> = OnceLock::new();
    GRAPH.get_or_init(|| barabasi_albert(N, 2, 555))
}

fn engine() -> Arc<QueryEngine> {
    static ENGINE: OnceLock<Arc<QueryEngine>> = OnceLock::new();
    Arc::clone(ENGINE.get_or_init(|| {
        Arc::new(
            QueryEngine::build(
                graph(),
                &SketchParams { epsilon: 0.35, seed: 47, ..Default::default() },
            )
            .expect("BA graph is connected"),
        )
    }))
}

fn pool() -> Arc<ServePool> {
    Arc::new(ServePool::new(engine(), PoolConfig { threads: 2, ..Default::default() }))
}

/// A fast-ticking config so deadline/flush behavior is observable in
/// test time without changing the code paths under test.
fn quick() -> ServerConfig {
    ServerConfig { poll_interval: Duration::from_millis(5), ..ServerConfig::default() }
}

/// Serialize tests that arm process-global failpoints (poison-tolerant,
/// same rationale as `tests/chaos.rs`).
fn failpoint_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn connect(server: &TcpServer) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream
}

/// Scenario 1 (framing): a client that dribbles its request one byte at
/// a time — each byte a separate segment, frames split at every possible
/// point — must still get exactly the answer a well-behaved client gets.
#[test]
fn byte_at_a_time_writer_is_framed_and_answered() {
    let server = TcpServer::start_with(pool(), "127.0.0.1:0", quick()).unwrap();
    let stream = connect(&server);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let request = b"{\"op\":\"ecc\",\"v\":7,\"id\":1}\n";
    for &byte in request {
        writer.write_all(&[byte]).unwrap();
        writer.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let json = Json::parse(&line).unwrap();
    assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true), "{line}");
    assert_eq!(json.get("id").and_then(Json::as_usize), Some(1), "{line}");
    let expected = engine().eccentricity(7).value;
    let got = json.get("value").and_then(Json::as_f64).unwrap();
    assert!((got - expected).abs() < 1e-12, "dribbled request must hit the cache: {got}");
}

/// Scenario 2 (framing): a single request line that straddles — and then
/// blows through — the 64 KiB line cap arrives in chunks. The session
/// must answer with a typed `parse` error and close; it must not buffer
/// without bound or hang.
#[test]
fn request_straddling_the_line_cap_is_rejected_with_a_typed_line() {
    let server = TcpServer::start_with(pool(), "127.0.0.1:0", quick()).unwrap();
    let stream = connect(&server);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // 96 KiB of newline-free bytes in 8 KiB chunks: the reactor sees the
    // line grow across many reads before it crosses the 64 KiB default.
    let chunk = vec![b'z'; 8 * 1024];
    for _ in 0..12 {
        if writer.write_all(&chunk).is_err() {
            break; // already rejected mid-send: equally acceptable
        }
        let _ = writer.flush();
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let json = Json::parse(&line).unwrap();
    assert_eq!(json.get("ok").and_then(Json::as_bool), Some(false), "{line}");
    assert_eq!(json.get("error").and_then(Json::as_str), Some("parse"), "{line}");
    // After the notice the server closes its half; the next read is EOF.
    let mut rest = Vec::new();
    let _ = reader.read_to_end(&mut rest);
    assert!(
        rest.is_empty(),
        "nothing follows the rejection: {:?}",
        String::from_utf8_lossy(&rest)
    );
}

/// Scenario 3 (framing): several clients each fire an interleaved
/// pipelined burst — all request lines in one write, no reads in
/// between. Every client must get one response per request, in request
/// order, each matching ground truth.
#[test]
fn interleaved_pipelined_bursts_are_answered_in_order() {
    let server = Arc::new(TcpServer::start_with(pool(), "127.0.0.1:0", quick()).unwrap());
    const CLIENTS: usize = 4;
    const BURST: usize = 32;

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let stream = connect(&server);
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let mut burst = String::new();
                for i in 0..BURST {
                    let v = (c * BURST + i * 17) % N;
                    burst.push_str(&format!("{{\"op\":\"ecc\",\"v\":{v},\"id\":{i}}}\n"));
                }
                writer.write_all(burst.as_bytes()).unwrap();
                writer.flush().unwrap();
                let mut answers = Vec::new();
                for _ in 0..BURST {
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    let json = Json::parse(&line).unwrap();
                    assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true), "{line}");
                    answers.push((
                        json.get("id").and_then(Json::as_usize).unwrap(),
                        json.get("value").and_then(Json::as_f64).unwrap(),
                    ));
                }
                (c, answers)
            })
        })
        .collect();

    for handle in handles {
        let (c, answers) = handle.join().unwrap();
        for (i, (id, value)) in answers.iter().enumerate() {
            assert_eq!(*id, i, "client {c}: responses must come back in request order");
            let v = (c * BURST + i * 17) % N;
            let expected = engine().eccentricity(v).value;
            assert!(
                (value - expected).abs() < 1e-12,
                "client {c} request {i} (v={v}): {value} vs {expected}"
            );
        }
    }
}

/// Scenario 4 (slow-client defense): a client that pipelines requests
/// but never reads a byte of its responses must be shed once its pending
/// output would cross `write_buffer_cap` — instead of growing reactor
/// memory without bound or parking a thread on the dead socket.
#[test]
fn a_client_that_never_reads_its_responses_is_shed_at_the_write_buffer_cap() {
    let config = ServerConfig {
        write_buffer_cap: 1024, // the clamp floor: ~1.2 stats lines
        ..quick()
    };
    let server = Arc::new(TcpServer::start_with(pool(), "127.0.0.1:0", config).unwrap());

    let writer_server = Arc::clone(&server);
    let writer = std::thread::spawn(move || {
        let stream = connect(&writer_server);
        let mut stream = stream;
        // Never read. Keep the request pipeline full until the server
        // drops us (the blocked/failed write is the expected exit).
        for i in 0..200_000u64 {
            if writeln!(stream, "{{\"op\":\"stats\",\"id\":{i}}}").is_err() {
                break;
            }
        }
    });

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let snap = server.stats().snapshot();
        if snap.write_buffer_sheds >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "write-buffer overflow was never shed: {snap:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    writer.join().unwrap();
    // The shed is accounted as a buffer shed, not a timeout, and the
    // reactor's write memory never exceeded the configured bound.
    let snap = server.stats().snapshot();
    assert!(snap.write_buffered_peak <= 1024, "cap must bound pending output: {snap:?}");
}

/// Failpoint `transport.read`: an injected read error drops exactly the
/// connection that hit it; the listener and other sessions are unharmed.
#[test]
fn injected_read_error_drops_one_connection_and_spares_the_rest() {
    let _guard = failpoint_lock();
    failpoint::clear("transport.read");
    let server = TcpServer::start_with(pool(), "127.0.0.1:0", quick()).unwrap();

    // A healthy round trip first, so the victim connection is established
    // and the failpoint cannot hit an unrelated accept-time read.
    let stream = connect(&server);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writeln!(writer, "{{\"op\":\"ecc\",\"v\":3}}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":true"), "{line}");

    let fired_before = failpoint::fired("transport.read");
    failpoint::configure("transport.read", Action::IoError, Some(1));
    writeln!(writer, "{{\"op\":\"ecc\",\"v\":4}}").unwrap();
    // The injected fault kills the session: EOF (or a reset) instead of
    // an answer — but never a hang and never a corrupt line.
    let mut rest = Vec::new();
    let _ = reader.read_to_end(&mut rest);
    assert!(rest.is_empty(), "dropped session must not answer: {:?}", rest);
    assert_eq!(failpoint::fired("transport.read"), fired_before + 1);
    failpoint::clear("transport.read");

    // The server itself is fine: a fresh connection is served normally.
    let stream = connect(&server);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writeln!(writer, "{{\"op\":\"ecc\",\"v\":3}}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":true"), "after the fault: {line}");
}

/// Failpoint `transport.accept`: an injected accept error costs one
/// accept tick — the listener backs off and retries, it does not die.
/// Paired with a delay action on `transport.write` to show the delay
/// path is also wired: service is slowed, never broken.
#[test]
fn injected_accept_error_and_write_delay_slow_but_do_not_break_service() {
    let _guard = failpoint_lock();
    failpoint::clear("transport.accept");
    failpoint::clear("transport.write");
    let server = TcpServer::start_with(pool(), "127.0.0.1:0", quick()).unwrap();

    failpoint::configure("transport.accept", Action::IoError, Some(2));
    failpoint::configure("transport.write", Action::Delay(25), Some(4));

    let stream = connect(&server);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writeln!(writer, "{{\"op\":\"ecc\",\"v\":9,\"id\":7}}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let json = Json::parse(&line).unwrap();
    assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true), "{line}");
    let expected = engine().eccentricity(9).value;
    let got = json.get("value").and_then(Json::as_f64).unwrap();
    assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");

    assert!(failpoint::fired("transport.accept") >= 1, "accept failpoint must have fired");
    assert!(failpoint::fired("transport.write") >= 1, "write failpoint must have fired");
    failpoint::clear("transport.accept");
    failpoint::clear("transport.write");
}

/// How one storm client's connection resolved. Every client must land in
/// exactly one of these buckets — "hung" is not a bucket.
enum Fate {
    /// Got a correct answer.
    Answered,
    /// Got a well-formed one-line `overloaded` shed.
    Shed,
    /// The connection was reset under it (a shed racing its own writes —
    /// possible for clients still mid-write when the server hangs up).
    Reset,
}

/// Scenario 5 (the storm): ≥ 1000 concurrent connections — a mix of
/// well-behaved clients, byte-at-a-time slow writers, and mid-frame
/// disconnectors. The contract: zero wrong answers, every shed is a
/// well-formed typed line, nobody hangs, and reactor write memory stays
/// below `admitted-connections × write_buffer_cap`.
#[test]
fn storm_of_a_thousand_mixed_clients_is_answered_or_shed_never_hung() {
    // 1000 client sockets + server-side fds live in this one process.
    let available = reecc_serve::sys::raise_nofile_limit(8192);
    assert!(available >= 3000, "need fds for the storm, got {available}");

    const CLIENTS: usize = 1000;
    let config = ServerConfig {
        max_connections: 96,
        accept_burst: 64,
        idle_timeout: Duration::from_secs(60),
        ..quick()
    };
    let cap_bound = (96u64 + 2 * 64) * config.write_buffer_cap as u64;
    let server = Arc::new(TcpServer::start_with(pool(), "127.0.0.1:0", config).unwrap());
    let expected = engine().eccentricity(11).value;

    let wrong = Arc::new(AtomicU64::new(0));
    let malformed_sheds = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let server = Arc::clone(&server);
            let wrong = Arc::clone(&wrong);
            let malformed = Arc::clone(&malformed_sheds);
            std::thread::Builder::new()
                .stack_size(256 * 1024)
                .spawn(move || -> Option<Fate> {
                    let Ok(stream) = TcpStream::connect(server.local_addr()) else {
                        return Some(Fate::Reset);
                    };
                    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
                    let request = b"{\"op\":\"ecc\",\"v\":11}\n";
                    match i % 3 {
                        // Mid-frame disconnector: half a request, then gone.
                        2 => {
                            let mut writer = stream;
                            let _ = writer.write_all(&request[..request.len() / 2]);
                            return None;
                        }
                        // Slow writer: the request one byte at a time.
                        1 => {
                            let mut writer = stream.try_clone().unwrap();
                            for &byte in request.iter() {
                                if writer.write_all(&[byte]).is_err() {
                                    return Some(Fate::Reset);
                                }
                                std::thread::sleep(Duration::from_millis(1));
                            }
                        }
                        // Well-behaved: one write, then read.
                        _ => {
                            let mut writer = stream.try_clone().unwrap();
                            if writer.write_all(request).is_err() {
                                return Some(Fate::Reset);
                            }
                        }
                    }
                    let mut reader = BufReader::new(stream);
                    let mut line = String::new();
                    match reader.read_line(&mut line) {
                        Err(_) | Ok(0) => Some(Fate::Reset),
                        Ok(_) => match Json::parse(&line) {
                            Err(_) => {
                                malformed.fetch_add(1, Ordering::Relaxed);
                                Some(Fate::Shed)
                            }
                            Ok(json) => {
                                if json.get("ok").and_then(Json::as_bool) == Some(true) {
                                    let got = json
                                        .get("value")
                                        .and_then(Json::as_f64)
                                        .unwrap_or(-1.0);
                                    if (got - expected).abs() > 1e-12 {
                                        wrong.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Some(Fate::Answered)
                                } else {
                                    if json.get("error").and_then(Json::as_str)
                                        != Some("overloaded")
                                    {
                                        malformed.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Some(Fate::Shed)
                                }
                            }
                        },
                    }
                })
                .unwrap()
        })
        .collect();

    let (mut answered, mut shed, mut reset, mut disconnected) = (0u64, 0u64, 0u64, 0u64);
    for handle in handles {
        match handle.join().unwrap() {
            Some(Fate::Answered) => answered += 1,
            Some(Fate::Shed) => shed += 1,
            Some(Fate::Reset) => reset += 1,
            None => disconnected += 1,
        }
    }

    // Every client resolved (the joins above would have hung otherwise);
    // now the quality gates.
    assert_eq!(wrong.load(Ordering::Relaxed), 0, "wrong answers under storm");
    assert_eq!(malformed_sheds.load(Ordering::Relaxed), 0, "sheds must be typed lines");
    assert_eq!(answered + shed + reset + disconnected, CLIENTS as u64);
    assert!(answered >= 1, "at least the early clients must be answered");
    assert_eq!(disconnected, (CLIENTS / 3) as u64);
    // Only clients still writing when the server hangs up (slow writers
    // racing a shed) may see a reset; well-behaved clients get an answer
    // or the typed line. A small slack absorbs scheduler-order races.
    assert!(
        reset <= (CLIENTS / 3 + 32) as u64,
        "resets beyond the slow-writer population: {reset} (answered {answered}, shed {shed})"
    );

    let snap = server.stats().snapshot();
    assert!(
        snap.write_buffered_peak <= cap_bound,
        "reactor write memory {} exceeded cap bound {cap_bound}",
        snap.write_buffered_peak
    );
    assert!(
        snap.connections_accepted >= (CLIENTS - CLIENTS / 3) as u64,
        "most clients must at least reach admission: {snap:?}"
    );
}
