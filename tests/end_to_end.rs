//! Integration: the full paper pipeline on dataset analogs —
//! synthesize → preprocess → query → characterize the distribution →
//! optimize — exercising every crate together.

use reecc_core::metrics::EccentricityDistribution;
use reecc_core::{exact_query, fast_query, ExactResistance, SketchParams};
use reecc_datasets::{preprocess, Dataset, Tier};
use reecc_distfit::burr::fit_burr_mle;
use reecc_distfit::summary::Summary;
use reecc_graph::stats::{average_clustering, power_law_fit};
use reecc_graph::traversal::is_connected;
use reecc_opt::{exact_trajectory, far_min_recc, OptimizeParams};

#[test]
fn full_pipeline_on_politician_analog() {
    // 1. Synthesize + preprocess.
    let raw = Dataset::Politician.synthesize(Tier::Ci);
    let g = preprocess(&raw);
    assert!(is_connected(&g));
    assert_eq!(g.node_count(), raw.node_count(), "analogs are already connected");

    // 2. Structural statistics match the scale-free small-world class.
    let (gamma, _) = power_law_fit(&g).expect("degree sequence is heavy-tailed");
    assert!((1.8..4.5).contains(&gamma), "gamma {gamma}");
    assert!(average_clustering(&g) > 0.05);

    // 3. Exact distribution: radius/diameter ordering and positive skew.
    let exact = ExactResistance::new(&g).expect("connected");
    let dist = exact.eccentricity_distribution();
    assert!(dist.radius() > 0.0);
    assert!(dist.radius() < dist.diameter());
    let summary = Summary::of(dist.values()).expect("non-empty");
    assert!(
        summary.skewness > 0.5,
        "analog distribution must be right-skewed, got {}",
        summary.skewness
    );
    assert!(summary.excess_kurtosis > 0.0, "and heavy-tailed");

    // 4. FASTQUERY agrees within epsilon.
    let q: Vec<usize> = (0..g.node_count()).collect();
    let eps = 0.3;
    let fast =
        fast_query(&g, &q, &SketchParams { epsilon: eps, seed: 1, ..Default::default() })
            .expect("connected");
    let fast_dist =
        EccentricityDistribution::new(fast.results.iter().map(|&(_, c)| c).collect());
    let sigma = fast_dist.mean_relative_error(&dist);
    assert!(sigma < eps / 2.0, "sigma {sigma} should be well under epsilon {eps}");

    // 5. Burr XII fits the distribution better than a flat strawman.
    let fit = fit_burr_mle(dist.values()).expect("fit succeeds");
    assert!(fit.ks_statistic < 0.5);

    // 6. Optimization improves the most eccentric node.
    let worst = dist.argmax();
    let plan = far_min_recc(
        &g,
        3,
        worst,
        &OptimizeParams {
            sketch: SketchParams { epsilon: 0.3, seed: 2, ..Default::default() },
            ..Default::default()
        },
    )
    .expect("runs");
    let traj = exact_trajectory(&g, worst, &plan).expect("evaluates");
    assert!(
        traj[3] < traj[0] * 0.9,
        "3 edges should reduce the worst node's eccentricity by >10%: {traj:?}"
    );
}

#[test]
fn paper_shape_claims_hold_across_all_table1_analogs() {
    for dataset in Dataset::table1() {
        let g = preprocess(&dataset.synthesize(Tier::Ci));
        let dist = ExactResistance::new(&g).expect("connected").eccentricity_distribution();
        let summary = Summary::of(dist.values()).expect("non-empty");
        // Paper §IV-B: asymmetric, right-skewed, heavy-tailed.
        assert!(summary.skewness > 0.0, "{}: skew {}", dataset.name(), summary.skewness);
        assert!(
            summary.mean < (dist.radius() + dist.diameter()) / 2.0,
            "{}: bulk must sit closer to the radius than the diameter",
            dataset.name()
        );
        // Paper Table I: radius and diameter are close (same magnitude).
        assert!(
            dist.diameter() < 4.0 * dist.radius(),
            "{}: R {} vs phi {}",
            dataset.name(),
            dist.diameter(),
            dist.radius()
        );
    }
}

#[test]
fn exact_query_and_distribution_are_consistent() {
    let g = preprocess(&Dataset::Government.synthesize(Tier::Ci));
    let dist = ExactResistance::new(&g).expect("connected").eccentricity_distribution();
    let sample: Vec<usize> = (0..g.node_count()).step_by(37).collect();
    let queried = exact_query(&g, &sample).expect("connected");
    for (node, c) in queried {
        assert!((dist.get(node) - c).abs() < 1e-9);
    }
}

#[test]
fn tier_scaling_preserves_topology_class() {
    let ci = preprocess(&Dataset::HepPh.synthesize(Tier::Ci));
    let small = preprocess(&Dataset::HepPh.synthesize(Tier::Small));
    assert!(small.node_count() > ci.node_count());
    // Average degree stays in the same band across tiers.
    let ratio = small.average_degree() / ci.average_degree();
    assert!((0.5..2.0).contains(&ratio), "degree ratio {ratio}");
    // Both are connected scale-free graphs.
    assert!(is_connected(&ci) && is_connected(&small));
    assert!(power_law_fit(&small).is_some());
}

#[test]
fn edge_list_roundtrip_preserves_eccentricities() {
    // Serialize an analog, re-read it, and verify the resistance
    // eccentricities survive the I/O roundtrip.
    let g = Dataset::Tribes.synthesize(Tier::Ci);
    let mut buf = Vec::new();
    reecc_graph::io::write_edge_list(&g, &mut buf).expect("write");
    let (g2, _) =
        reecc_graph::io::parse_edge_list(std::str::from_utf8(&buf).unwrap()).expect("parse");
    // Node ids are remapped by first appearance; compare sorted values.
    let mut d1 = ExactResistance::new(&g)
        .expect("connected")
        .eccentricity_distribution()
        .values()
        .to_vec();
    let mut d2 = ExactResistance::new(&g2)
        .expect("connected")
        .eccentricity_distribution()
        .values()
        .to_vec();
    d1.sort_by(|a, b| a.partial_cmp(b).unwrap());
    d2.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for (a, b) in d1.iter().zip(&d2) {
        assert!((a - b).abs() < 1e-9);
    }
}
