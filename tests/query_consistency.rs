//! Integration: the three query pipelines agree within their guarantees
//! across graph families and parameter settings.

use reecc_core::metrics::EccentricityDistribution;
use reecc_core::{
    approx_query, approx_recc, exact_query, fast_query, ExactResistance, ResistanceSketch,
    SketchParams,
};
use reecc_graph::generators::{
    barabasi_albert, barbell, cycle, grid, holme_kim, line, lollipop, star, watts_strogatz,
};
use reecc_graph::Graph;

fn params(epsilon: f64) -> SketchParams {
    SketchParams { epsilon, seed: 99, ..Default::default() }
}

fn families() -> Vec<(&'static str, Graph)> {
    vec![
        ("line", line(20)),
        ("cycle", cycle(24)),
        ("star", star(25)),
        ("grid", grid(5, 6)),
        ("barbell", barbell(6, 4)),
        ("lollipop", lollipop(7, 6)),
        ("ba", barabasi_albert(60, 2, 5)),
        ("holme_kim", holme_kim(60, 3, 0.5, 6)),
        ("watts_strogatz", watts_strogatz(50, 3, 0.2, 7)),
    ]
}

#[test]
fn approx_query_meets_epsilon_guarantee_across_families() {
    let eps = 0.3;
    for (name, g) in families() {
        let q: Vec<usize> = (0..g.node_count()).collect();
        let exact = exact_query(&g, &q).expect("connected");
        let approx = approx_query(&g, &q, &params(eps)).expect("connected");
        for ((i, c), (_, c_bar)) in exact.iter().zip(&approx) {
            assert!(
                (c_bar - c).abs() <= eps * c + 1e-12,
                "{name} node {i}: approx {c_bar} vs exact {c}"
            );
        }
    }
}

#[test]
fn fast_query_meets_epsilon_guarantee_across_families() {
    let eps = 0.3;
    for (name, g) in families() {
        let q: Vec<usize> = (0..g.node_count()).collect();
        let exact = exact_query(&g, &q).expect("connected");
        let fast = fast_query(&g, &q, &params(eps)).expect("connected");
        for ((i, c), (_, c_hat)) in exact.iter().zip(&fast.results) {
            assert!(
                (c_hat - c).abs() <= eps * c + 1e-12,
                "{name} node {i}: fast {c_hat} vs exact {c}"
            );
        }
    }
}

#[test]
fn fast_query_hull_values_never_exceed_approx_query() {
    // The hull restricts the max to a subset, so ĉ(v) <= c̄(v) when both
    // use the same sketch seed.
    let g = barabasi_albert(80, 3, 11);
    let p = params(0.3);
    let q: Vec<usize> = (0..80).collect();
    let approx = approx_query(&g, &q, &p).expect("connected");
    let fast = fast_query(&g, &q, &p).expect("connected");
    for ((_, c_bar), (_, c_hat)) in approx.iter().zip(&fast.results) {
        assert!(*c_hat <= c_bar + 1e-12);
    }
}

#[test]
fn sigma_shrinks_with_epsilon_on_average() {
    let g = holme_kim(100, 3, 0.6, 13);
    let q: Vec<usize> = (0..100).collect();
    let exact_vals = EccentricityDistribution::new(
        exact_query(&g, &q).expect("connected").iter().map(|&(_, c)| c).collect(),
    );
    let sigma = |eps: f64| {
        let out = approx_query(&g, &q, &params(eps)).expect("connected");
        EccentricityDistribution::new(out.iter().map(|&(_, c)| c).collect())
            .mean_relative_error(&exact_vals)
    };
    let coarse = sigma(0.5);
    let fine = sigma(0.15);
    assert!(
        fine < coarse,
        "sigma should shrink with epsilon: eps=0.5 -> {coarse}, eps=0.15 -> {fine}"
    );
    assert!(fine < 0.05, "fine sigma should be tiny, got {fine}");
}

#[test]
fn approx_recc_matches_single_node_of_full_query() {
    let g = barabasi_albert(50, 2, 17);
    let p = params(0.3);
    let full = approx_query(&g, &[7], &p).expect("connected")[0].1;
    let single = approx_recc(&g, 7, &p).expect("connected");
    assert!((full - single).abs() < 1e-12, "same sketch seed must give identical results");
}

#[test]
fn sketch_pairwise_resistances_meet_epsilon_on_mixed_graph() {
    let g = lollipop(8, 8);
    let eps = 0.25;
    let exact = ExactResistance::new(&g).expect("connected");
    let sketch = ResistanceSketch::build(&g, &params(eps)).expect("connected");
    let n = g.node_count();
    for u in 0..n {
        for v in (u + 1)..n {
            let r = exact.resistance(u, v);
            let rt = sketch.resistance(u, v);
            assert!((rt - r).abs() <= eps * r, "r({u},{v}): {rt} vs {r}");
        }
    }
}

#[test]
fn radius_diameter_consistency_between_exact_and_fast() {
    let g = holme_kim(90, 3, 0.6, 23);
    let q: Vec<usize> = (0..90).collect();
    let exact = EccentricityDistribution::new(
        exact_query(&g, &q).expect("connected").iter().map(|&(_, c)| c).collect(),
    );
    let fast = fast_query(&g, &q, &params(0.2)).expect("connected");
    let fast_dist =
        EccentricityDistribution::new(fast.results.iter().map(|&(_, c)| c).collect());
    assert!((fast_dist.radius() - exact.radius()).abs() <= 0.2 * exact.radius());
    assert!((fast_dist.diameter() - exact.diameter()).abs() <= 0.2 * exact.diameter());
}

#[test]
fn disconnected_and_empty_graphs_error_everywhere() {
    let disc = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
    assert!(exact_query(&disc, &[0]).is_err());
    assert!(approx_query(&disc, &[0], &params(0.3)).is_err());
    assert!(fast_query(&disc, &[0], &params(0.3)).is_err());
    assert!(approx_recc(&disc, 0, &params(0.3)).is_err());
    let empty = Graph::from_edges(0, []).unwrap();
    assert!(exact_query(&empty, &[]).is_err());
}
