//! Robustness integration tests: the fault-tolerant solve ladder and the
//! query degradation policy, exercised on pathological graphs (barbell,
//! star with extreme degree spread, long path) and under injected faults
//! (artificially starved CG iteration budgets).
//!
//! The contract under test, end to end:
//!
//! * `ResistanceSketch::build` repairs or reports every poisoned row —
//!   the diagnostics partition (`converged_first_try + repaired +
//!   unconverged + dropped = rows`) always holds;
//! * `fast_query` answers within `(1 ± ε)` of `exact_query` **or**
//!   explicitly reports degradation and names the answering tier;
//! * no silently out-of-bound (non-finite, negative, > n−1) resistance
//!   estimates ever escape, and nothing panics.

use proptest::prelude::*;
use reecc_core::query::{exact_query, fast_query_with_policy, DegradationPolicy, QueryTier};
use reecc_core::{fast_query, ResistanceSketch, SketchParams};
use reecc_graph::generators::{barbell, line, star};
use reecc_graph::Graph;
use reecc_hull::approxch::ApproxChOptions;
use reecc_linalg::cg::CgOptions;
use reecc_linalg::RecoveryPolicy;

const EPS: f64 = 0.3;

/// The pathological family: dumbbell/barbell (two dense lobes joined by a
/// long thin bridge — tiny spectral gap), star (extreme degree spread:
/// hub degree n−1 vs leaf degree 1), and path (worst-case CG iteration
/// count per unit of diameter).
fn pathological(idx: usize, size: usize) -> Graph {
    match idx % 3 {
        0 => barbell(size.clamp(3, 8), size + 4),
        1 => star(3 * size + 4),
        _ => line(2 * size + 2),
    }
}

fn starved_cg(cap: usize) -> CgOptions {
    CgOptions { max_iterations: Some(cap), ..CgOptions::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With a starved CG budget but the full escalation ladder available,
    /// every estimate is either within the (1 ± ε) band of the exact
    /// answer or the query explicitly reports that it degraded.
    #[test]
    fn fast_query_is_accurate_or_honest(
        idx in 0usize..3,
        size in 4usize..12,
        seed in 0u64..500,
        cap in 1usize..4,
    ) {
        let g = pathological(idx, size);
        let n = g.node_count();
        let params = SketchParams {
            epsilon: EPS,
            seed,
            cg: starved_cg(cap),
            ..Default::default()
        };
        let q: Vec<usize> = (0..n).collect();
        let out = fast_query_with_policy(
            &g,
            &q,
            &params,
            ApproxChOptions::default(),
            DegradationPolicy::default(),
        ).unwrap();
        let exact = exact_query(&g, &q).unwrap();
        for (&(i, c_hat), &(_, c)) in out.results.iter().zip(&exact) {
            prop_assert!(c_hat.is_finite(), "node {}: non-finite estimate", i);
            prop_assert!(
                c_hat >= 0.0 && c_hat <= (n as f64) * (1.0 + EPS),
                "node {}: estimate {} out of bounds for an n = {} graph",
                i, c_hat, n
            );
            let within = (c_hat - c).abs() <= EPS * c + 1e-9;
            prop_assert!(
                within || out.diagnostics.degraded(),
                "node {}: {} vs exact {} with no degradation report ({:?})",
                i, c_hat, c, out.diagnostics
            );
        }
    }

    /// The sketch row-repair accounting is a partition of the rows, on
    /// every pathological graph and every starvation level.
    #[test]
    fn sketch_diagnostics_partition_rows(
        idx in 0usize..3,
        size in 4usize..12,
        seed in 0u64..500,
        cap in 1usize..6,
    ) {
        let g = pathological(idx, size);
        let params = SketchParams {
            epsilon: EPS,
            seed,
            cg: starved_cg(cap),
            ..Default::default()
        };
        let sketch = ResistanceSketch::build(&g, &params).unwrap();
        let d = sketch.diagnostics();
        prop_assert_eq!(
            d.converged_first_try + d.repaired.len() + d.unconverged.len() + d.dropped.len(),
            d.rows,
            "row accounting must partition: {:?}", d
        );
        // Fallback rows are a subset of repaired rows.
        for r in &d.fallback_rows {
            prop_assert!(d.repaired.contains(r));
        }
        // All surviving estimates stay finite regardless of repair outcome.
        for v in 0..g.node_count() {
            prop_assert!(sketch.eccentricity(v).0.is_finite());
        }
    }
}

/// The injected-fault acceptance test: cap the CG iteration budget at one
/// iteration. With the default policy the ladder must repair every row and
/// `fast_query` must stay at the Fast tier with correct answers. With the
/// relaxation rungs and the dense fallback disabled, each graph must either
/// still be rescued by the preconditioned rung alone (the star is — SGS is
/// nearly an exact solve there) and stay accurate at Fast, or visibly
/// degrade with the answering tier named and the answers still correct via
/// the Exact tier. At least one graph in the family must exercise the
/// degraded path.
#[test]
fn injected_fault_is_repaired_or_reported() {
    let mut saw_degraded = false;
    for (name, g) in [("barbell", barbell(5, 12)), ("star", star(24)), ("line", line(30))] {
        let n = g.node_count();
        let q: Vec<usize> = (0..n).collect();
        let exact = exact_query(&g, &q).unwrap();

        // Default policy: the ladder repairs every row.
        let repaired_params =
            SketchParams { epsilon: EPS, seed: 7, cg: starved_cg(1), ..Default::default() };
        let sketch = ResistanceSketch::build(&g, &repaired_params).unwrap();
        let d = sketch.diagnostics();
        assert_eq!(
            d.converged_first_try + d.repaired.len() + d.unconverged.len() + d.dropped.len(),
            d.rows,
            "{name}: every row must be repaired or reported"
        );
        assert!(d.fully_converged(), "{name}: default ladder must repair all rows: {d:?}");
        let out = fast_query(&g, &q, &repaired_params).unwrap();
        assert_eq!(out.diagnostics.tier, QueryTier::Fast, "{name}");
        for (&(i, c_hat), &(_, c)) in out.results.iter().zip(&exact) {
            assert!(
                (c_hat - c).abs() <= EPS * c + 1e-9,
                "{name} node {i}: repaired fast {c_hat} vs exact {c}"
            );
        }

        // Fallback disabled: degradation must be visible, answers correct
        // via the Exact tier.
        let crippled_params = SketchParams {
            recovery: RecoveryPolicy {
                tolerance_relaxation: 1.0,
                iteration_boost: 1,
                dense_fallback_max_nodes: 0,
            },
            ..repaired_params
        };
        let out = fast_query_with_policy(
            &g,
            &q,
            &crippled_params,
            ApproxChOptions::default(),
            DegradationPolicy::default(),
        )
        .unwrap();
        if out.diagnostics.degraded() {
            saw_degraded = true;
            assert_eq!(out.diagnostics.tier, QueryTier::Exact, "{name}: {:?}", out.diagnostics);
            assert!(!out.diagnostics.notes.is_empty(), "{name}: notes must explain the tier");
            for (&(i, c_hat), &(_, c)) in out.results.iter().zip(&exact) {
                assert!(
                    (c_hat - c).abs() < 1e-9,
                    "{name} node {i}: exact-tier answer {c_hat} vs {c}"
                );
            }
        } else {
            // The preconditioned rung alone repaired every row; the
            // estimates must then honour the ordinary accuracy contract.
            assert_eq!(out.diagnostics.tier, QueryTier::Fast, "{name}: {:?}", out.diagnostics);
            for (&(i, c_hat), &(_, c)) in out.results.iter().zip(&exact) {
                assert!(
                    (c_hat - c).abs() <= EPS * c + 1e-9,
                    "{name} node {i}: preconditioner-rescued {c_hat} vs exact {c}"
                );
            }
        }
    }
    assert!(saw_degraded, "no graph in the family exercised the degraded path");
}

/// Degradation without an exact escape hatch: the query must still return
/// finite answers, name the Approx tier, and keep the hull empty.
#[test]
fn degradation_without_exact_guard_stays_finite() {
    let g = line(40);
    let q: Vec<usize> = (0..40).collect();
    let params = SketchParams {
        epsilon: EPS,
        seed: 3,
        cg: starved_cg(1),
        recovery: RecoveryPolicy {
            tolerance_relaxation: 1.0,
            iteration_boost: 1,
            dense_fallback_max_nodes: 0,
        },
        ..Default::default()
    };
    let policy = DegradationPolicy { exact_fallback_max_nodes: 0, ..Default::default() };
    let out =
        fast_query_with_policy(&g, &q, &params, ApproxChOptions::default(), policy).unwrap();
    assert_eq!(out.diagnostics.tier, QueryTier::Approx, "{:?}", out.diagnostics);
    assert!(out.hull.is_empty());
    for &(_, c_hat) in &out.results {
        assert!(c_hat.is_finite());
    }
}
